/**
 * @file
 * Tests for trace characterization and the simulator's fragmentation
 * metric.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/experiment.h"
#include "workload/trace_gen.h"
#include "workload/workload_stats.h"

namespace netpack {
namespace {

JobSpec
makeSpec(int id, int gpus, const std::string &model,
         std::int64_t iterations, Seconds submit)
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = iterations;
    spec.submitTime = submit;
    return spec;
}

TEST(TraceStatsTest, CountsAndHistograms)
{
    JobTrace trace(std::vector<JobSpec>{
        makeSpec(0, 1, "ResNet50", 100, 0.0),
        makeSpec(1, 4, "VGG16", 100, 10.0),
        makeSpec(2, 4, "VGG16", 200, 30.0),
        makeSpec(3, 16, "AlexNet", 50, 60.0)});
    const TraceStats stats = analyzeTrace(trace, 50.0, 4);

    EXPECT_EQ(stats.jobs, 4u);
    EXPECT_EQ(stats.demandHistogram.at(1), 1);
    EXPECT_EQ(stats.demandHistogram.at(4), 2);
    EXPECT_EQ(stats.demandHistogram.at(16), 1);
    EXPECT_EQ(stats.modelMix.at("VGG16"), 2);
    EXPECT_EQ(stats.totalGpuDemand, 25);
    EXPECT_EQ(stats.maxGpuDemand, 16);
    EXPECT_EQ(stats.multiServerJobs, 1); // only the 16-GPU job
    EXPECT_EQ(stats.interarrivals.count(), 3u);
    EXPECT_DOUBLE_EQ(stats.interarrivals.mean(), 20.0);
}

TEST(TraceStatsTest, SingleGpuJobsContributeNoComm)
{
    JobTrace trace(std::vector<JobSpec>{
        makeSpec(0, 1, "VGG16", 100, 0.0)});
    const TraceStats stats = analyzeTrace(trace);
    EXPECT_GT(stats.computeGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(stats.commGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(stats.commFraction(), 0.0);
}

TEST(TraceStatsTest, CommFractionGrowsWithVggShare)
{
    // A VGG-heavy trace must be more communication-bound than a
    // ResNet-heavy one with the same shape.
    std::vector<JobSpec> vgg_jobs, resnet_jobs;
    for (int i = 0; i < 10; ++i) {
        vgg_jobs.push_back(makeSpec(i, 8, "VGG16", 100, i));
        resnet_jobs.push_back(makeSpec(i, 8, "ResNet50", 100, i));
    }
    const TraceStats vgg = analyzeTrace(JobTrace(std::move(vgg_jobs)));
    const TraceStats resnet =
        analyzeTrace(JobTrace(std::move(resnet_jobs)));
    EXPECT_GT(vgg.commFraction(), resnet.commFraction());
}

TEST(TraceStatsTest, EmptyTrace)
{
    const TraceStats stats = analyzeTrace(JobTrace{});
    EXPECT_EQ(stats.jobs, 0u);
    EXPECT_DOUBLE_EQ(stats.commFraction(), 0.0);
}

TEST(TraceStatsTest, InvalidParamsRejected)
{
    JobTrace trace(std::vector<JobSpec>{
        makeSpec(0, 1, "VGG16", 10, 0.0)});
    EXPECT_THROW(analyzeTrace(trace, 0.0), ConfigError);
    EXPECT_THROW(analyzeTrace(trace, 50.0, 0), ConfigError);
}

TEST(TraceStatsTest, GeneratedTraceIsConsistent)
{
    TraceGenConfig gen;
    gen.numJobs = 200;
    gen.seed = 3;
    const JobTrace trace = generateTrace(gen);
    const TraceStats stats = analyzeTrace(trace);
    EXPECT_EQ(stats.jobs, 200u);
    EXPECT_EQ(stats.totalGpuDemand, trace.totalGpuDemand());
    EXPECT_EQ(stats.maxGpuDemand, trace.maxGpuDemand());
    int histogram_total = 0;
    for (const auto &[gpus, count] : stats.demandHistogram)
        histogram_total += count;
    EXPECT_EQ(histogram_total, 200);
}

TEST(Fragmentation, PackersFragmentLessThanSpreaders)
{
    // LF drains partial servers; Optimus spreads evenly. On a trace of
    // odd-sized jobs LF must leave fewer stranded GPUs.
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    const JobTrace trace = [&] {
        std::vector<JobSpec> jobs;
        for (int i = 0; i < 24; ++i)
            jobs.push_back(makeSpec(i, 3, "ResNet50", 100,
                                    static_cast<double>(i)));
        return JobTrace(std::move(jobs));
    }();

    const auto frag = [&](const std::string &placer) {
        ExperimentConfig config;
        config.cluster = cluster;
        config.placer = placer;
        config.sim.placementPeriod = 1.0;
        return runExperiment(config, trace).avgFragmentation;
    };
    EXPECT_LE(frag("LF"), frag("Optimus") + 0.05);
}

TEST(Fragmentation, BoundsHold)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    TraceGenConfig gen;
    gen.numJobs = 40;
    gen.seed = 77;
    gen.maxGpuDemand = 8;
    gen.durationLogMu = 3.5;
    const JobTrace trace = generateTrace(gen);
    ExperimentConfig config;
    config.cluster = cluster;
    const RunMetrics metrics = runExperiment(config, trace);
    EXPECT_GE(metrics.avgFragmentation, 0.0);
    EXPECT_LE(metrics.avgFragmentation, 1.0 + 1e-9);
}

} // namespace
} // namespace netpack
