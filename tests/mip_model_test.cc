/**
 * @file
 * Tests for the Table-3 MIP constraint checker, and its use as an
 * oracle over every placement policy: whatever a placer emits must be
 * MIP-feasible.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/exhaustive.h"
#include "placement/mip_model.h"

namespace netpack {
namespace {

ClusterTopology
makeTopo(Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 4;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

JobSpec
makeSpec(int id, int gpus, const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 100;
    return spec;
}

TEST(MipModel, ValidLocalPlacementIsFeasible)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 4)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.psServer = ServerId(0);
    const auto check = checkMipFeasibility(topo, jobs, {placed});
    EXPECT_TRUE(check.feasible) << check.violations.front();
}

TEST(MipModel, VariablesMaterializeCorrectly)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 8)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.workers[ServerId(1)] = 4;
    placed.placement.psServer = ServerId(2);
    placed.placement.inaRacks = {RackId(0)};
    const auto vars = materializeMipVariables(topo, jobs, {placed});
    ASSERT_EQ(vars.size(), 1u);
    EXPECT_EQ(vars[0].w[0], 4);
    EXPECT_EQ(vars[0].x[1], 1);
    EXPECT_EQ(vars[0].y[2], 1);
    EXPECT_EQ(vars[0].z[0], 1);
    EXPECT_EQ(vars[0].z[1], 0);
    // Fully aggregated at 100 Gbps: a = v, b = 0.
    EXPECT_NEAR(vars[0].v, 100.0, 1e-6);
    EXPECT_NEAR(vars[0].a, 100.0, 1e-6);
    EXPECT_NEAR(vars[0].b, 0.0, 1e-6);
}

TEST(MipModel, UnaggregatedJobHasBNotA)
{
    const ClusterTopology topo = makeTopo(0.0); // no PAT -> pass-through
    const std::vector<JobSpec> jobs = {makeSpec(0, 8)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.workers[ServerId(1)] = 4;
    placed.placement.psServer = ServerId(2);
    const auto vars = materializeMipVariables(topo, jobs, {placed});
    EXPECT_NEAR(vars[0].a, 0.0, 1e-9);
    EXPECT_GT(vars[0].b, 0.0);
    const auto check = checkMipFeasibility(topo, jobs, {placed});
    EXPECT_TRUE(check.feasible) << check.violations.front();
}

TEST(MipModel, DetectsDemandMismatch)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 8)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4; // only 4 of 8
    placed.placement.psServer = ServerId(0);
    const auto check = checkMipFeasibility(topo, jobs, {placed});
    EXPECT_FALSE(check.feasible);
    EXPECT_NE(check.violations.front().find("Eq.1"), std::string::npos);
}

TEST(MipModel, DetectsMissingPs)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 8)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.workers[ServerId(1)] = 4;
    // No PS set: Eq. 6 must fire (checker materializes sum_y = 0).
    const auto check = checkMipFeasibility(topo, jobs, {placed});
    EXPECT_FALSE(check.feasible);
    bool found_eq6 = false;
    for (const auto &violation : check.violations)
        found_eq6 |= violation.find("Eq.6") != std::string::npos;
    EXPECT_TRUE(found_eq6);
}

TEST(MipModel, DetectsGpuOvercommit)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 4), makeSpec(1, 4)};
    PlacedJob a, b;
    a.id = JobId(0);
    a.placement.workers[ServerId(0)] = 4;
    a.placement.psServer = ServerId(0);
    b.id = JobId(1);
    b.placement.workers[ServerId(0)] = 4; // same server: 8 GPUs on 4
    b.placement.psServer = ServerId(0);
    const auto check = checkMipFeasibility(topo, jobs, {a, b});
    EXPECT_FALSE(check.feasible);
    bool found_eq2 = false;
    for (const auto &violation : check.violations)
        found_eq2 |= violation.find("Eq.2") != std::string::npos;
    EXPECT_TRUE(found_eq2);
}

TEST(MipModel, DetectsBogusInaRack)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 8)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.workers[ServerId(1)] = 4;
    placed.placement.psServer = ServerId(2);
    placed.placement.inaRacks = {RackId(1)}; // job never touches rack 1
    const auto check = checkMipFeasibility(topo, jobs, {placed});
    EXPECT_FALSE(check.feasible);
}

TEST(MipModel, ObjectiveMatchesPlacementObjective)
{
    const ClusterTopology topo = makeTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 8, "ResNet50")};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 4;
    placed.placement.workers[ServerId(1)] = 4;
    placed.placement.psServer = ServerId(2);
    placed.placement.inaRacks = {RackId(0)};
    EXPECT_NEAR(mipObjective(topo, jobs, {placed}),
                placementObjective(topo, jobs, {placed}), 1e-9);
}

/** Oracle sweep: every policy's output must be MIP-feasible. */
class MipOracleTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(MipOracleTest, AllPlacersEmitFeasiblePlacements)
{
    const auto [name, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 59 + 1);
    // Generous PAT keeps the binary a/b materialization exact (no
    // mid-fill PAT exhaustion; see mip_model.cc).
    const ClusterTopology topo = makeTopo(4000.0);
    GpuLedger gpus(topo);
    const auto placer = makePlacerByName(name);

    std::vector<JobSpec> jobs;
    for (int j = 0; j < 6; ++j) {
        jobs.push_back(makeSpec(j, static_cast<int>(rng.uniformInt(1, 8)),
                                rng.uniform() < 0.5 ? "VGG16"
                                                    : "ResNet50"));
    }
    const auto result = placer->placeBatch(jobs, topo, gpus, {});

    std::vector<JobSpec> placed_specs;
    for (const PlacedJob &placed : result.placed) {
        const auto it = std::find_if(jobs.begin(), jobs.end(),
                                     [&](const JobSpec &s) {
                                         return s.id == placed.id;
                                     });
        placed_specs.push_back(*it);
    }
    const auto check =
        checkMipFeasibility(topo, placed_specs, result.placed);
    EXPECT_TRUE(check.feasible)
        << name << ": " << check.violations.front();
}

INSTANTIATE_TEST_SUITE_P(
    Placers, MipOracleTest,
    ::testing::Combine(::testing::Values("NetPack", "GB", "FB", "LF",
                                         "Optimus", "Tetris", "Comb",
                                         "Random"),
                       ::testing::Range(0, 3)));

} // namespace
} // namespace netpack
