/**
 * @file
 * Tests for the bench scaffolding: cluster presets, trace builders, and
 * the Figure 7/8 matrix normalization/rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bench_util.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace netpack {
namespace {

TEST(BenchUtil, TestbedPresetMatchesPaper)
{
    const ClusterConfig cluster = benchutil::testbedCluster();
    // Five servers under one ToR, 100 Gbps NICs (Section 6.1 testbed).
    EXPECT_EQ(cluster.numRacks, 1);
    EXPECT_EQ(cluster.serversPerRack, 5);
    EXPECT_DOUBLE_EQ(cluster.serverLinkGbps, 100.0);
    EXPECT_NO_THROW(ClusterTopology topo(cluster));
}

TEST(BenchUtil, SimulatorPresetMatchesPaper)
{
    const ClusterConfig cluster = benchutil::simulatorCluster();
    // 16 racks x 16 machines x 4 GPUs, 1:1, 1 Tbps PAT (Section 6.1).
    EXPECT_EQ(cluster.numRacks, 16);
    EXPECT_EQ(cluster.serversPerRack, 16);
    EXPECT_EQ(cluster.gpusPerServer, 4);
    EXPECT_DOUBLE_EQ(cluster.oversubscription, 1.0);
    EXPECT_DOUBLE_EQ(cluster.torPatGbps, 1000.0);
}

TEST(BenchUtil, ParseOptionsAcceptsJsonPath)
{
    const char *argv[] = {"bench/bench_test", "--full", "--json",
                          "out.json"};
    const benchutil::Options options =
        benchutil::parseOptions(4, const_cast<char **>(argv));
    EXPECT_TRUE(options.full);
    EXPECT_FALSE(options.csv);
    EXPECT_EQ(options.jsonPath, "out.json");
    // parseOptions also seeds the manifest with the invocation.
    EXPECT_EQ(benchutil::manifest().bench, "bench_test");
    obs::setMetricsEnabled(false); // --json enables metrics; undo
}

TEST(BenchUtil, RecordRunSummarizesMetrics)
{
    const std::size_t before = benchutil::manifest().runs.size();
    RunMetrics metrics;
    benchutil::recordRun("unit|test|run", metrics);
    ASSERT_EQ(benchutil::manifest().runs.size(), before + 1);
    EXPECT_EQ(benchutil::manifest().runs.back().label, "unit|test|run");
}

TEST(BenchUtil, TestbedTraceFitsTheTestbed)
{
    const ClusterTopology topo(benchutil::testbedCluster());
    const JobTrace trace =
        benchutil::testbedTrace(DemandDistribution::Philly, 50, 1);
    EXPECT_EQ(trace.size(), 50u);
    EXPECT_LE(trace.maxGpuDemand(), topo.totalGpus());
}

TEST(BenchUtil, FigurePlacersLeadWithNetPack)
{
    const auto placers = benchutil::figurePlacers();
    ASSERT_EQ(placers.size(), 6u);
    EXPECT_EQ(placers.front(), "NetPack");
}

TEST(BenchUtil, MatrixTableRendersMeanAndStd)
{
    benchutil::Figure7Matrix matrix;
    matrix.placers = {"NetPack", "GB"};
    matrix.traces = {DemandDistribution::Philly};
    matrix.platforms = {"testbed"};

    benchutil::MatrixCell netpack, gb;
    for (double r : {1.0, 1.0, 1.0})
        netpack.jctRatio.add(r);
    for (double r : {1.2, 1.4, 1.0})
        gb.jctRatio.add(r);
    matrix.cells[benchutil::Figure7Matrix::key("Real", "testbed",
                                               "NetPack")] = netpack;
    matrix.cells[benchutil::Figure7Matrix::key("Real", "testbed", "GB")] =
        gb;

    const Table table = benchutil::matrixTable(matrix, false);
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("testbed/Real"), std::string::npos);
    EXPECT_NE(out.find("1.200"), std::string::npos); // GB mean
    EXPECT_NE(out.find("1.000"), std::string::npos); // NetPack mean
}

TEST(BenchUtil, MatrixKeyIsStable)
{
    EXPECT_EQ(benchutil::Figure7Matrix::key("Real", "testbed", "GB"),
              "Real|testbed|GB");
}

/** Run parseOptionsInto over an argv literal; empty string = success. */
std::string
parseError(std::vector<const char *> argv)
{
    benchutil::Options options;
    const auto error = benchutil::parseOptionsInto(
        static_cast<int>(argv.size()), const_cast<char **>(argv.data()),
        options);
    return error ? *error : std::string();
}

TEST(BenchUtil, ParseOptionsIntoAcceptsJobsAndSeeds)
{
    const char *argv[] = {"bench/bench_test", "--jobs", "8", "--seeds",
                          "5"};
    benchutil::Options options;
    const auto error = benchutil::parseOptionsInto(
        5, const_cast<char **>(argv), options);
    EXPECT_FALSE(error.has_value()) << *error;
    EXPECT_EQ(options.jobs, 8);
    EXPECT_EQ(options.seeds, 5);
}

TEST(BenchUtil, ParseOptionsIntoRejectsUnknownFlag)
{
    EXPECT_NE(parseError({"bench", "--bogus"}).find("--bogus"),
              std::string::npos);
}

TEST(BenchUtil, ParseOptionsIntoRejectsMissingOperands)
{
    // Each operand-taking flag must complain when the operand is absent.
    EXPECT_NE(parseError({"bench", "--json"}).find("--json"),
              std::string::npos);
    EXPECT_NE(parseError({"bench", "--jobs"}).find("--jobs"),
              std::string::npos);
    EXPECT_NE(parseError({"bench", "--seeds"}).find("--seeds"),
              std::string::npos);
}

TEST(BenchUtil, ParseOptionsIntoRejectsBadNumbers)
{
    EXPECT_FALSE(parseError({"bench", "--jobs", "zero"}).empty());
    EXPECT_FALSE(parseError({"bench", "--jobs", "0"}).empty());
    EXPECT_FALSE(parseError({"bench", "--jobs", "-3"}).empty());
    EXPECT_FALSE(parseError({"bench", "--seeds", "1.5"}).empty());
}

TEST(BenchUtil, EffectiveSeedsPrefersExplicitFlag)
{
    benchutil::Options options;
    EXPECT_EQ(benchutil::effectiveSeeds(options, 3), 3);
    options.seeds = 7;
    EXPECT_EQ(benchutil::effectiveSeeds(options, 3), 7);
}

TEST(BenchUtil, UsageTextMentionsEveryFlag)
{
    const std::string usage = benchutil::usageText("bench_x");
    for (const char *flag :
         {"--full", "--csv", "--json", "--jobs", "--seeds", "--help"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

} // namespace
} // namespace netpack
