/**
 * @file
 * Tests for the sharded-PS extension (Section 4.1's "AllReduce with
 * multiple PSes is composed of multiple one-PS AllReduces"): placement
 * validation, shard-hierarchy decomposition, the water-filling
 * composition rule, and the placer knob.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "ina/hierarchy.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"
#include "sim/packet_model.h"
#include "waterfill/steady_state.h"

namespace netpack {
namespace {

ClusterTopology
makeTopo(int servers = 6, Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = servers;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

Placement
shardedPlacement(int ps1, int ps2)
{
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.workers[ServerId(1)] = 2;
    p.psServer = ServerId(ps1);
    p.extraPsServers = {ServerId(ps2)};
    p.inaRacks = {RackId(0)};
    return p;
}

TEST(MultiPs, PlacementHelpers)
{
    const Placement p = shardedPlacement(2, 3);
    EXPECT_EQ(p.psShards(), 2);
    const auto pses = p.psServers();
    ASSERT_EQ(pses.size(), 2u);
    EXPECT_EQ(pses[0].value, 2);
    EXPECT_EQ(pses[1].value, 3);
    EXPECT_FALSE(p.singleServer());
    EXPECT_NO_THROW(p.validate());
}

TEST(MultiPs, DuplicatePsRejected)
{
    Placement p = shardedPlacement(2, 2);
    EXPECT_THROW(p.validate(), InternalError);
    Placement q = shardedPlacement(2, 3);
    q.psServer = ServerId();
    EXPECT_THROW(q.validate(), InternalError);
}

TEST(MultiPs, ShardDecomposition)
{
    const ClusterTopology topo = makeTopo();
    const Placement p = shardedPlacement(2, 3);
    const auto shards = buildShardHierarchies(topo, JobId(0), p);
    ASSERT_EQ(shards.size(), 2u);
    for (const auto &shard : shards) {
        EXPECT_FALSE(shard.local());
        EXPECT_EQ(shard.workerServerCount(), 2);
    }
    // Single-PS placements decompose trivially.
    Placement single = shardedPlacement(2, 3);
    single.extraPsServers.clear();
    EXPECT_EQ(buildShardHierarchies(topo, JobId(0), single).size(), 1u);
}

TEST(MultiPs, AllRacksIncludesEveryPs)
{
    ClusterConfig config;
    config.numRacks = 3;
    config.serversPerRack = 2;
    const ClusterTopology topo(config);
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.workers[ServerId(1)] = 2;
    p.psServer = ServerId(2);        // rack 1
    p.extraPsServers = {ServerId(4)}; // rack 2
    EXPECT_EQ(p.allRacks(topo).size(), 3u);
}

TEST(MultiPs, ShardingRelievesThePsBottleneck)
{
    // Two jobs sharing one PS server: each gets 50 Gbps. Sharding job A
    // over a second, idle PS lets its second shard bypass the shared
    // bottleneck, raising its composed throughput.
    const ClusterTopology topo = makeTopo();
    WaterFillingEstimator wf(topo);

    PlacedJob b;
    b.id = JobId(1);
    b.placement.workers[ServerId(2)] = 2;
    b.placement.workers[ServerId(3)] = 2;
    b.placement.psServer = ServerId(4);
    b.placement.inaRacks = {RackId(0)};

    PlacedJob a_single;
    a_single.id = JobId(0);
    a_single.placement.workers[ServerId(0)] = 2;
    a_single.placement.workers[ServerId(1)] = 2;
    a_single.placement.psServer = ServerId(4); // shared with B
    a_single.placement.inaRacks = {RackId(0)};

    PlacedJob a_sharded = a_single;
    a_sharded.placement.extraPsServers = {ServerId(5)}; // idle server

    const Gbps single =
        wf.estimate({a_single, b}).jobThroughput(JobId(0));
    const Gbps sharded =
        wf.estimate({a_sharded, b}).jobThroughput(JobId(0));
    EXPECT_NEAR(single, 50.0, 1e-6);
    EXPECT_GT(sharded, single + 10.0);
}

TEST(MultiPs, SingleShardRateUnchanged)
{
    // k = 1 must reproduce the classic result exactly.
    const ClusterTopology topo = makeTopo();
    WaterFillingEstimator wf(topo);
    PlacedJob job;
    job.id = JobId(0);
    job.placement.workers[ServerId(0)] = 2;
    job.placement.workers[ServerId(1)] = 2;
    job.placement.psServer = ServerId(2);
    job.placement.inaRacks = {RackId(0)};
    EXPECT_NEAR(wf.estimate({job}).jobThroughput(JobId(0)), 100.0, 1e-6);
}

TEST(MultiPs, FlowModelComposesIterationTime)
{
    // A sharded job's iteration time uses the composed throughput.
    const ClusterTopology topo = makeTopo();
    FlowNetworkModel model(topo);
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 4;
    spec.iterations = 10;
    model.jobStarted(spec, shardedPlacement(2, 3), 0.0);
    const Gbps rate = model.currentRate(JobId(0));
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GT(rate, 0.0);
    std::vector<JobId> completed;
    model.advance(0.0, 1e9, completed);
    EXPECT_EQ(completed.size(), 1u);
}

TEST(MultiPs, PacketModelRejectsShardedJobs)
{
    const ClusterTopology topo = makeTopo();
    PacketNetworkModel model(topo);
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 4;
    spec.iterations = 10;
    EXPECT_THROW(model.jobStarted(spec, shardedPlacement(2, 3), 0.0),
                 ConfigError);
}

TEST(MultiPs, PlacerEmitsRequestedShards)
{
    NetPackConfig config;
    config.psShards = 3;
    const ClusterTopology topo = makeTopo(8);
    GpuLedger gpus(topo);
    NetPackPlacer placer(config);
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 8; // forces the multi-server path
    spec.iterations = 100;
    const auto result = placer.placeBatch({spec}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    const Placement &p = result.placed[0].placement;
    EXPECT_EQ(p.psShards(), 3);
    p.validate(); // distinct PS servers
}

TEST(MultiPs, InvalidShardConfigRejected)
{
    NetPackConfig config;
    config.psShards = 0;
    EXPECT_THROW(NetPackPlacer placer(config), ConfigError);
    config.psShards = 100;
    EXPECT_THROW(NetPackPlacer placer2(config), ConfigError);
}

} // namespace
} // namespace netpack
