/**
 * @file
 * Tests for the two-tier (pod-based) core extension: topology wiring,
 * hierarchy paths across pod uplinks, water-filling bottlenecks at the
 * pod layer, and NetPack's pod-awareness under pod oversubscription.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "ina/hierarchy.h"
#include "placement/netpack_placer.h"
#include "waterfill/steady_state.h"

namespace netpack {
namespace {

ClusterConfig
twoTierConfig(double pod_oversub = 4.0)
{
    ClusterConfig config;
    config.numRacks = 4;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = 1.0; // rack layer non-blocking
    config.racksPerPod = 2;        // pods {0,1} and {2,3}
    config.podOversubscription = pod_oversub;
    config.torPatGbps = 400.0;
    return config;
}

TEST(TwoTier, TopologyWiring)
{
    const ClusterTopology topo(twoTierConfig());
    EXPECT_TRUE(topo.twoTier());
    EXPECT_EQ(topo.numPods(), 2);
    EXPECT_EQ(topo.podOf(RackId(0)), 0);
    EXPECT_EQ(topo.podOf(RackId(1)), 0);
    EXPECT_EQ(topo.podOf(RackId(2)), 1);
    EXPECT_EQ(topo.podOf(RackId(3)), 1);
    // links: 8 access + 4 rack-core + 2 pod uplinks.
    EXPECT_EQ(topo.numLinks(), 14);
    const Link &uplink = topo.link(topo.podUplink(0));
    EXPECT_EQ(uplink.kind, Link::Kind::PodUplink);
    EXPECT_EQ(uplink.pod, 0);
    // rack core = 2 servers x 100; pod uplink = 2 racks x 200 / 4 = 100.
    EXPECT_DOUBLE_EQ(topo.coreLinkCapacity(RackId(0)), 200.0);
    EXPECT_DOUBLE_EQ(uplink.capacity, 100.0);
}

TEST(TwoTier, OneBigSwitchHasNoPods)
{
    ClusterConfig config = twoTierConfig();
    config.racksPerPod = 0;
    const ClusterTopology topo(config);
    EXPECT_FALSE(topo.twoTier());
    EXPECT_EQ(topo.numPods(), 0);
    EXPECT_EQ(topo.numLinks(), 12);
}

TEST(TwoTier, InvalidPodConfigRejected)
{
    ClusterConfig config = twoTierConfig();
    config.racksPerPod = 3; // 4 racks not divisible by 3
    EXPECT_THROW(ClusterTopology topo(config), ConfigError);
    config.racksPerPod = 2;
    config.podOversubscription = 0.5;
    EXPECT_THROW(ClusterTopology topo2(config), ConfigError);
}

TEST(TwoTier, SamePodHierarchySkipsUplinks)
{
    const ClusterTopology topo(twoTierConfig());
    Placement p;
    p.workers[ServerId(0)] = 2; // rack 0, pod 0
    p.psServer = ServerId(2);   // rack 1, pod 0
    p.inaRacks = {RackId(0), RackId(1)};
    JobHierarchy h(topo, JobId(0), p);
    for (const auto &node : h.nodes()) {
        for (LinkId link : node.uplinks) {
            EXPECT_NE(topo.link(link).kind, Link::Kind::PodUplink)
                << "same-pod job must not cross a pod uplink";
        }
    }
}

TEST(TwoTier, CrossPodHierarchyCrossesBothUplinks)
{
    const ClusterTopology topo(twoTierConfig());
    Placement p;
    p.workers[ServerId(0)] = 2; // rack 0, pod 0
    p.psServer = ServerId(4);   // rack 2, pod 1
    p.inaRacks = {RackId(0), RackId(2)};
    JobHierarchy h(topo, JobId(0), p);
    int pod_uplinks = 0;
    for (const auto &node : h.nodes()) {
        for (LinkId link : node.uplinks) {
            if (topo.link(link).kind == Link::Kind::PodUplink)
                ++pod_uplinks;
        }
    }
    EXPECT_EQ(pod_uplinks, 2); // source pod + destination pod
}

TEST(TwoTier, WaterFillingBottlenecksOnPodUplink)
{
    // Cross-pod job: with 4:1 pod oversubscription the 100 Gbps pod
    // uplink is no tighter than the access link... tighten it to 8:1 so
    // the pod layer binds at 50 Gbps.
    const ClusterTopology topo(twoTierConfig(8.0));
    PlacedJob job;
    job.id = JobId(0);
    job.placement.workers[ServerId(0)] = 4;
    job.placement.psServer = ServerId(4); // other pod
    job.placement.inaRacks = {RackId(0), RackId(2)};

    WaterFillingEstimator wf(topo);
    const SteadyState state = wf.estimate({job});
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 50.0, 1e-6);
    EXPECT_NEAR(state.linkResidual[topo.podUplink(0).index()], 0.0,
                1e-6);
}

TEST(TwoTier, SamePodJobKeepsFullRate)
{
    const ClusterTopology topo(twoTierConfig(8.0));
    PlacedJob job;
    job.id = JobId(0);
    job.placement.workers[ServerId(0)] = 4; // rack 0
    job.placement.psServer = ServerId(2);   // rack 1, same pod
    job.placement.inaRacks = {RackId(0), RackId(1)};

    WaterFillingEstimator wf(topo);
    const SteadyState state = wf.estimate({job});
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 100.0, 1e-6);
}

TEST(TwoTier, NetPackPrefersPodLocalPlacement)
{
    // Enough free GPUs exist within pod 0 for an 8-GPU job; under heavy
    // pod oversubscription NetPack must not scatter it across pods.
    ClusterConfig config = twoTierConfig(16.0);
    config.serversPerRack = 4;
    const ClusterTopology topo(config);
    GpuLedger gpus(topo);
    NetPackPlacer placer;

    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 8;
    spec.iterations = 100;
    const auto result = placer.placeBatch({spec}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);

    std::set<int> pods;
    for (RackId rack :
         result.placed[0].placement.allRacks(topo))
        pods.insert(topo.podOf(rack));
    EXPECT_EQ(pods.size(), 1u)
        << "NetPack crossed pods under 16:1 pod oversubscription";
}

TEST(TwoTier, PodQueriesRejectedInOneBigSwitchMode)
{
    ClusterConfig config = twoTierConfig();
    config.racksPerPod = 0;
    const ClusterTopology topo(config);
    EXPECT_THROW(topo.podOf(RackId(0)), InternalError);
    EXPECT_THROW(topo.podUplink(0), InternalError);
}

} // namespace
} // namespace netpack
