/**
 * @file
 * Cross-module integration tests: full trace replays under both
 * fidelities and several placers, the headline "NetPack wins" property
 * on contended scenarios, and flow-vs-packet consistency (the Figure 6
 * property in miniature).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "placement/baselines.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

ClusterConfig
mediumCluster()
{
    ClusterConfig config;
    config.numRacks = 4;
    config.serversPerRack = 4;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 200.0;
    return config;
}

JobTrace
shortTrace(int jobs, std::uint64_t seed,
           DemandDistribution dist = DemandDistribution::Philly)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = dist;
    gen.maxGpuDemand = 16;
    gen.meanInterarrival = 8.0;
    gen.durationLogMu = 4.2;
    gen.durationLogSigma = 0.8;
    return generateTrace(gen);
}

/** Every placer finishes every job under the flow model. */
class PlacerCompletionTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PlacerCompletionTest, FlowRunCompletesAllJobs)
{
    ExperimentConfig config;
    config.cluster = mediumCluster();
    config.placer = GetParam();
    const JobTrace trace = shortTrace(40, 11);
    const RunMetrics metrics = runExperiment(config, trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
    EXPECT_GT(metrics.avgJct(), 0.0);
    EXPECT_GT(metrics.avgDe(), 0.0);
    EXPECT_LE(metrics.avgDe(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Placers, PlacerCompletionTest,
                         ::testing::Values("NetPack", "GB", "FB", "LF",
                                           "Optimus", "Tetris", "Comb"));

TEST(Integration, PacketRunCompletesAllJobs)
{
    ExperimentConfig config;
    config.cluster = mediumCluster();
    config.cluster.numRacks = 1;
    config.cluster.serversPerRack = 5;
    config.cluster.gpusPerServer = 2;
    config.fidelity = Fidelity::Packet;
    const JobTrace trace = shortTrace(12, 13);
    const RunMetrics metrics = runExperiment(config, trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
}

TEST(Integration, NetPackBeatsNaiveBaselinesOnContendedMix)
{
    // A communication-heavy mix on a PAT-constrained cluster is where
    // cross-layer placement pays (the Figure 7 headline shape).
    ExperimentConfig config;
    config.cluster = mediumCluster();
    config.cluster.torPatGbps = 100.0;
    config.sim.placementPeriod = 5.0;

    TraceGenConfig gen;
    gen.numJobs = 60;
    gen.seed = 29;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 8.0; // mostly multi-server jobs
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 3.0;
    gen.durationLogMu = 4.0;
    gen.durationLogSigma = 0.6;
    const JobTrace trace = generateTrace(gen);

    const auto results =
        comparePlacers(config, trace, {"NetPack", "Random", "LF"});
    const double netpack = results.at("NetPack").avgJct();
    const double random = results.at("Random").avgJct();
    const double lf = results.at("LF").avgJct();
    EXPECT_LT(netpack, random * 1.05)
        << "NetPack " << netpack << "s vs Random " << random << "s";
    EXPECT_LT(netpack, lf * 1.10)
        << "NetPack " << netpack << "s vs LF " << lf << "s";
}

TEST(Integration, FlowAndPacketJctsCorrelate)
{
    // Miniature Figure 6: the two fidelities must rank traces the same
    // way and correlate strongly.
    ClusterConfig cluster;
    cluster.numRacks = 1;
    cluster.serversPerRack = 5;
    cluster.gpusPerServer = 2;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 300.0;

    std::vector<double> flow_jcts, packet_jcts;
    for (std::uint64_t seed : {101, 102, 103, 104}) {
        TraceGenConfig gen;
        gen.numJobs = 8;
        gen.seed = seed;
        gen.maxGpuDemand = 6;
        gen.meanInterarrival = 5.0;
        gen.durationLogMu = 3.5;
        gen.durationLogSigma = 0.7;
        const JobTrace trace = generateTrace(gen);

        ExperimentConfig config;
        config.cluster = cluster;
        config.fidelity = Fidelity::Flow;
        flow_jcts.push_back(runExperiment(config, trace).avgJct());
        config.fidelity = Fidelity::Packet;
        packet_jcts.push_back(runExperiment(config, trace).avgJct());
    }
    EXPECT_GT(pearsonCorrelation(flow_jcts, packet_jcts), 0.9);
}

TEST(Integration, MorePatNeverHurtsNetPack)
{
    // Sweeping PAT upward must not degrade average JCT (Figure 11's
    // monotone trend).
    const JobTrace trace = shortTrace(40, 41, DemandDistribution::Poisson);
    std::vector<double> jcts;
    for (Gbps pat : {0.0, 100.0, 1000.0}) {
        ExperimentConfig config;
        config.cluster = mediumCluster();
        config.cluster.torPatGbps = pat;
        jcts.push_back(runExperiment(config, trace).avgJct());
    }
    EXPECT_GE(jcts[0], jcts[2] * 0.99);
}

TEST(Integration, OversubscriptionHurtsEveryone)
{
    const JobTrace trace = shortTrace(40, 43, DemandDistribution::Poisson);
    std::vector<double> jcts;
    for (double oversub : {1.0, 8.0}) {
        ExperimentConfig config;
        config.cluster = mediumCluster();
        config.cluster.oversubscription = oversub;
        jcts.push_back(runExperiment(config, trace).avgJct());
    }
    EXPECT_GE(jcts[1], jcts[0] * 0.99);
}

TEST(Integration, HeadlineOversubscriptionWin)
{
    // The Figure-12 headline at 20:1 oversubscription, pinned with the
    // bench's exact seed: NetPack must beat GB by a solid margin.
    TraceGenConfig gen;
    gen.numJobs = 100;
    gen.seed = 57;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 10.0;
    gen.maxGpuDemand = 64;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.6;
    gen.durationLogSigma = 0.9;
    const JobTrace trace = generateTrace(gen);

    ExperimentConfig config;
    config.cluster.numRacks = 16;
    config.cluster.serversPerRack = 8;
    config.cluster.gpusPerServer = 4;
    config.cluster.oversubscription = 20.0;
    config.cluster.torPatGbps = 400.0;
    config.sim.placementPeriod = 10.0;

    config.placer = "NetPack";
    const double netpack = runExperiment(config, trace).avgJct();
    config.placer = "GB";
    const double gb = runExperiment(config, trace).avgJct();
    EXPECT_LT(netpack * 1.2, gb)
        << "NetPack " << netpack << "s vs GB " << gb << "s at 20:1";
}

TEST(Integration, HeadlineSimulatorValidation)
{
    // The Figure-6 headline: flow vs packet correlation must stay very
    // high on the bench's trace family.
    ClusterConfig cluster;
    cluster.numRacks = 1;
    cluster.serversPerRack = 5;
    cluster.gpusPerServer = 2;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 300.0;

    std::vector<double> flow_jcts, packet_jcts;
    for (std::uint64_t seed : {1001, 1002, 1003, 1004, 1005}) {
        TraceGenConfig gen;
        gen.numJobs = 10;
        gen.seed = seed;
        gen.maxGpuDemand = 6;
        gen.meanInterarrival = 6.0;
        gen.durationLogMu = 3.6;
        gen.durationLogSigma = 0.8;
        const JobTrace trace = generateTrace(gen);

        ExperimentConfig config;
        config.cluster = cluster;
        config.sim.placementPeriod = 5.0;
        config.fidelity = Fidelity::Flow;
        flow_jcts.push_back(runExperiment(config, trace).avgJct());
        config.fidelity = Fidelity::Packet;
        packet_jcts.push_back(runExperiment(config, trace).avgJct());
    }
    EXPECT_GT(pearsonCorrelation(flow_jcts, packet_jcts), 0.95);
}

TEST(Integration, EverythingOnStressRun)
{
    // All the extensions at once: two-tier core, sharded-PS NetPack,
    // periodic INA rebalancing, injected failures with checkpointing,
    // and a sampling observer — the run must complete every job with
    // consistent metrics.
    ClusterConfig cluster;
    cluster.numRacks = 4;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 150.0;
    cluster.oversubscription = 2.0;
    cluster.racksPerPod = 2;
    cluster.podOversubscription = 4.0;
    const ClusterTopology topo(cluster);

    NetPackConfig placer_config;
    placer_config.psShards = 2;
    SimConfig sim_config;
    sim_config.placementPeriod = 5.0;
    sim_config.inaRebalancePeriod = 30.0;
    sim_config.samplePeriod = 10.0;
    sim_config.checkpointIters = 25;
    for (int f = 0; f < 3; ++f) {
        ServerFailure failure;
        failure.time = 20.0 + 40.0 * f;
        failure.server = ServerId(5 * f);
        failure.downtime = 15.0;
        sim_config.failures.push_back(failure);
    }

    ClusterSimulator sim(topo, std::make_unique<FlowNetworkModel>(topo),
                         std::make_unique<NetPackPlacer>(placer_config),
                         sim_config);
    int samples = 0;
    sim.setObserver([&](Seconds, const NetworkModel &model,
                        const std::vector<PlacedJob> &running) {
        ++samples;
        for (const PlacedJob &job : running) {
            const double progress = model.progressFraction(job.id);
            EXPECT_GE(progress, 0.0);
            EXPECT_LE(progress, 1.0);
        }
    });

    TraceGenConfig gen;
    gen.numJobs = 40;
    gen.seed = 99;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 7.0;
    gen.maxGpuDemand = 16;
    gen.meanInterarrival = 4.0;
    gen.durationLogMu = 4.0;
    const JobTrace trace = generateTrace(gen);

    const RunMetrics metrics = sim.run(trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
    EXPECT_GT(samples, 3);
    for (const auto &record : metrics.records) {
        EXPECT_GT(record.jct(), 0.0);
        record.placement.validate();
    }
}

TEST(Integration, MetricsAreInternallyConsistent)
{
    ExperimentConfig config;
    config.cluster = mediumCluster();
    const JobTrace trace = shortTrace(30, 47);
    const RunMetrics metrics = runExperiment(config, trace);

    for (const auto &record : metrics.records) {
        EXPECT_GE(record.waitTime(), -1e-9);
        EXPECT_GT(record.jct(), 0.0);
        EXPECT_LE(record.finishTime, metrics.makespan + 1e-9);
        EXPECT_GT(record.distributionEfficiency(), 0.0);
        EXPECT_LE(record.distributionEfficiency(), 1.0 + 1e-9);
    }
    const SampleSet jcts = metrics.jctSamples();
    EXPECT_EQ(jcts.count(), trace.size());
    EXPECT_GE(jcts.percentile(90.0), jcts.percentile(10.0));
    EXPECT_GE(metrics.avgGpuUtilization, 0.0);
    EXPECT_LE(metrics.avgGpuUtilization, 1.0 + 1e-9);
}

} // namespace
} // namespace netpack
