/**
 * @file
 * Tests for the parallel execution engine: thread-pool semantics
 * (drain, stealing, exception propagation, nesting), counter-derived
 * seed streams, and — the subsystem's hard requirement — bit-identical
 * sweep results for any worker count.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/check.h"
#include "exec/deterministic_map.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

using exec::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&ran]() { ++ran; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitReturnsTaskValue)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.post([&ran]() { ++ran; });
    } // destructor must run all 50 before joining
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, IdleDestructionDoesNotDeadlock)
{
    ThreadPool pool(8); // destroyed with empty queues
}

TEST(ThreadPool, OversubscribedPoolDrains)
{
    // Many more tasks than workers than cores: every task must still
    // run exactly once.
    ThreadPool pool(16);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 2000; ++i)
        futures.push_back(pool.submit([&ran]() { ++ran; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(ran.load(), 2000);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesLowestFailingIndex)
{
    ThreadPool pool(4);
    try {
        exec::parallelFor(pool, 64, [](std::size_t i) {
            if (i % 10 == 3) // 3 is the lowest failing index
                throw std::runtime_error("fail@" + std::to_string(i));
        });
        FAIL() << "parallelFor swallowed the exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "fail@3");
    }
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(500);
    exec::parallelFor(pool, hits.size(),
                      [&hits](std::size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // The inner loops run on the same (single-worker!) pool as the
    // outer one; caller-helping must keep everything moving.
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    exec::parallelFor(pool, 4, [&](std::size_t) {
        exec::parallelFor(pool, 4, [&](std::size_t) { ++ran; });
    });
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitFromWorkerStaysRunnable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto outer = pool.submit([&]() {
        std::vector<std::future<void>> inner;
        for (int i = 0; i < 8; ++i)
            inner.push_back(pool.submit([&ran]() { ++ran; }));
        for (auto &future : inner) {
            while (future.wait_for(std::chrono::seconds(0)) !=
                   std::future_status::ready) {
                if (!pool.runPendingTask())
                    future.wait();
            }
        }
    });
    outer.get();
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, InsideTaskReflectsPoolExecution)
{
    EXPECT_FALSE(ThreadPool::insideTask());
    ThreadPool pool(2);
    std::atomic<int> inside{0};
    exec::parallelFor(pool, 16, [&inside](std::size_t) {
        if (ThreadPool::insideTask())
            ++inside;
    });
    // Every body observed itself inside a task — including those the
    // calling thread helped with via runPendingTask.
    EXPECT_EQ(inside.load(), 16);
    EXPECT_FALSE(ThreadPool::insideTask());
}

TEST(DeterministicMap, RunsSeriallyInOrderWithoutPool)
{
    std::vector<std::size_t> order;
    const bool fanned = exec::deterministicMap(
        nullptr, 5, [&order](std::size_t i) { order.push_back(i); });
    EXPECT_FALSE(fanned);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(DeterministicMap, SingleItemStaysSerialEvenWithPool)
{
    ThreadPool pool(2);
    int calls = 0;
    const bool fanned = exec::deterministicMap(
        &pool, 1, [&calls](std::size_t) { ++calls; });
    EXPECT_FALSE(fanned);
    EXPECT_EQ(calls, 1);
}

TEST(DeterministicMap, FansOutEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    const bool fanned = exec::deterministicMap(
        &pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
    EXPECT_TRUE(fanned);
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(DeterministicMap, NestedMapDegradesToSerial)
{
    ThreadPool pool(2);
    std::array<std::atomic<int>, 4> outer_hits{};
    std::atomic<int> nested_fanned{0};
    std::atomic<int> nested_out_of_order{0};
    const bool outer_fanned = exec::deterministicMap(
        &pool, outer_hits.size(), [&](std::size_t i) {
            // A map issued from inside a pool task must run inline, in
            // index order, and report that it did not fan out.
            std::vector<std::size_t> inner_order;
            const bool fanned = exec::deterministicMap(
                &pool, 3,
                [&inner_order](std::size_t j) {
                    inner_order.push_back(j);
                });
            if (fanned)
                ++nested_fanned;
            if (inner_order != std::vector<std::size_t>{0, 1, 2})
                ++nested_out_of_order;
            ++outer_hits[i];
        });
    EXPECT_TRUE(outer_fanned);
    EXPECT_EQ(nested_fanned.load(), 0);
    EXPECT_EQ(nested_out_of_order.load(), 0);
    for (const auto &hit : outer_hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(StreamSeed, DeterministicAndDecorrelated)
{
    EXPECT_EQ(exec::streamSeed(7, 0), exec::streamSeed(7, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 7ull, 1000ull})
        for (std::uint64_t index = 0; index < 100; ++index)
            seen.insert(exec::streamSeed(base, index));
    EXPECT_EQ(seen.size(), 300u); // no collisions across streams
}

/** A small-but-contended sweep matrix: 2 placers x 2 cells x 2 seeds. */
std::vector<exec::RunRequest>
smallMatrix()
{
    std::vector<exec::RunRequest> requests;
    for (const std::string &placer : {"NetPack", "GB"}) {
        for (int tight = 0; tight < 2; ++tight) {
            for (std::uint64_t seed = 0; seed < 2; ++seed) {
                exec::RunRequest request;
                request.cell = placer + (tight ? "|tight" : "|loose");
                request.label =
                    request.cell + "|seed" + std::to_string(seed);
                request.config.cluster.numRacks = 2;
                request.config.cluster.serversPerRack = 4;
                request.config.cluster.gpusPerServer = 2;
                request.config.cluster.torPatGbps = tight ? 60.0 : 200.0;
                request.config.sim.placementPeriod = 5.0;
                request.config.placer = placer;
                request.config.seed = exec::streamSeed(seed, tight);
                TraceGenConfig gen;
                gen.numJobs = 24;
                gen.seed = exec::streamSeed(11, seed);
                gen.demandMean = 4.0;
                gen.maxGpuDemand = 8;
                gen.meanInterarrival = 2.0;
                gen.durationLogMu = 3.5;
                gen.durationLogSigma = 0.8;
                request.trace = generateTrace(gen);
                requests.push_back(std::move(request));
            }
        }
    }
    return requests;
}

/** Exact-compare two runs, excluding wall-clock placementSeconds. */
void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].submitTime, b.records[i].submitTime);
        EXPECT_EQ(a.records[i].startTime, b.records[i].startTime);
        EXPECT_EQ(a.records[i].finishTime, b.records[i].finishTime);
    }
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.placementRounds, b.placementRounds);
    EXPECT_EQ(a.avgGpuUtilization, b.avgGpuUtilization);
    EXPECT_EQ(a.avgFragmentation, b.avgFragmentation);
    EXPECT_EQ(a.jobRestarts, b.jobRestarts);
    EXPECT_EQ(a.avgJct(), b.avgJct());
    EXPECT_EQ(a.avgDe(), b.avgDe());
}

TEST(Sweep, JobsOneAndJobsEightAreBitIdentical)
{
    const std::vector<exec::RunRequest> requests = smallMatrix();

    exec::SweepOptions serial;
    serial.jobs = 1;
    const exec::SweepResult a = exec::runSweep(requests, serial);

    exec::SweepOptions parallel;
    parallel.jobs = 8;
    const exec::SweepResult b = exec::runSweep(requests, parallel);

    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        expectIdenticalMetrics(a.runs[i].metrics, b.runs[i].metrics);

    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (const auto &[cell, stats] : a.cells) {
        const auto it = b.cells.find(cell);
        ASSERT_NE(it, b.cells.end()) << cell;
        // Bit-identical aggregation, not just approximately equal:
        // reductions run serially in request order on both sides.
        EXPECT_EQ(stats.avgJct.mean(), it->second.avgJct.mean());
        EXPECT_EQ(stats.avgJct.stddev(), it->second.avgJct.stddev());
        EXPECT_EQ(stats.avgDe.mean(), it->second.avgDe.mean());
        EXPECT_EQ(stats.makespan.mean(), it->second.makespan.mean());
        EXPECT_EQ(stats.avgGpuUtilization.mean(),
                  it->second.avgGpuUtilization.mean());
    }
}

TEST(Sweep, RepeatedParallelSweepsAreBitIdentical)
{
    const std::vector<exec::RunRequest> requests = smallMatrix();
    exec::SweepOptions options;
    options.jobs = 4;
    const exec::SweepResult a = exec::runSweep(requests, options);
    const exec::SweepResult b = exec::runSweep(requests, options);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        expectIdenticalMetrics(a.runs[i].metrics, b.runs[i].metrics);
}

TEST(Sweep, MetricsRegistryIdenticalForAnyWorkerCount)
{
    const std::vector<exec::RunRequest> requests = smallMatrix();
    obs::Registry::instance().reset();
    const bool was_enabled = obs::metricsEnabled();
    obs::setMetricsEnabled(true);

    exec::SweepOptions serial;
    serial.jobs = 1;
    exec::runSweep(requests, serial);
    const obs::MetricsSnapshot after_serial = obs::snapshot();

    obs::Registry::instance().reset();
    exec::SweepOptions parallel;
    parallel.jobs = 8;
    exec::runSweep(requests, parallel);
    const obs::MetricsSnapshot after_parallel = obs::snapshot();

    obs::setMetricsEnabled(was_enabled);

    EXPECT_EQ(after_serial.counters, after_parallel.counters);
    // No capture was silently dropped on either side.
    EXPECT_EQ(after_serial.counters.count("obs.merge_skipped"), 0u);
    // Gauges are last-write-wins; ordered publication makes even those
    // identical across worker counts.
    EXPECT_EQ(after_serial.gauges, after_parallel.gauges);
    ASSERT_EQ(after_serial.histograms.size(),
              after_parallel.histograms.size());
    for (const auto &[name, data] : after_serial.histograms) {
        const auto it = after_parallel.histograms.find(name);
        ASSERT_NE(it, after_parallel.histograms.end()) << name;
        EXPECT_EQ(data.counts, it->second.counts) << name;
        EXPECT_EQ(data.total, it->second.total) << name;
        EXPECT_EQ(data.sum, it->second.sum) << name;
    }
    // Log-bucketed quantile histograms join the contract, except the
    // `_us` / `_seconds` wall-clock ones (machine-speed dependent): for
    // those only the registration and observation count must match.
    ASSERT_EQ(after_serial.logHistograms.size(),
              after_parallel.logHistograms.size());
    for (const auto &[name, data] : after_serial.logHistograms) {
        const auto it = after_parallel.logHistograms.find(name);
        ASSERT_NE(it, after_parallel.logHistograms.end()) << name;
        EXPECT_EQ(data.total, it->second.total) << name;
        if (obs::isWallClockMetric(name))
            continue;
        EXPECT_EQ(data.counts, it->second.counts) << name;
        EXPECT_EQ(data.sum, it->second.sum) << name;
    }
    // Telemetry series are keyed by sim time, so they are fully
    // deterministic across worker counts.
    ASSERT_EQ(after_serial.series.size(), after_parallel.series.size());
    for (const auto &[name, data] : after_serial.series) {
        const auto it = after_parallel.series.find(name);
        ASSERT_NE(it, after_parallel.series.end()) << name;
        EXPECT_EQ(data.totalPushed, it->second.totalPushed) << name;
        EXPECT_TRUE(data.points == it->second.points) << name;
    }
}

TEST(Sweep, RunExceptionPropagates)
{
    std::vector<exec::RunRequest> requests = smallMatrix();
    requests[1].config.placer = "NoSuchPlacer";
    exec::SweepOptions options;
    options.jobs = 4;
    EXPECT_THROW(exec::runSweep(requests, options), ConfigError);
}

TEST(Sweep, EmptyRequestListYieldsEmptyResult)
{
    const exec::SweepResult result = exec::runSweep({});
    EXPECT_TRUE(result.runs.empty());
    EXPECT_TRUE(result.cells.empty());
}

} // namespace
} // namespace netpack
