/**
 * @file
 * Unit tests for the cluster topology and the GPU ledger.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "topology/cluster.h"
#include "topology/gpu_ledger.h"

namespace netpack {
namespace {

ClusterConfig
smallConfig()
{
    ClusterConfig config;
    config.numRacks = 4;
    config.serversPerRack = 3;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = 2.0;
    config.torPatGbps = 500.0;
    return config;
}

// ------------------------------------------------------------- topology

TEST(ClusterTopologyTest, CountsFollowConfig)
{
    ClusterTopology topo(smallConfig());
    EXPECT_EQ(topo.numServers(), 12);
    EXPECT_EQ(topo.numRacks(), 4);
    EXPECT_EQ(topo.totalGpus(), 48);
    EXPECT_EQ(topo.numLinks(), 16);
}

TEST(ClusterTopologyTest, RackOfPartitionsServers)
{
    ClusterTopology topo(smallConfig());
    EXPECT_EQ(topo.rackOf(ServerId(0)).value, 0);
    EXPECT_EQ(topo.rackOf(ServerId(2)).value, 0);
    EXPECT_EQ(topo.rackOf(ServerId(3)).value, 1);
    EXPECT_EQ(topo.rackOf(ServerId(11)).value, 3);
}

TEST(ClusterTopologyTest, ServersInRackRoundTrip)
{
    ClusterTopology topo(smallConfig());
    for (int r = 0; r < topo.numRacks(); ++r) {
        const auto servers = topo.serversInRack(RackId(r));
        EXPECT_EQ(static_cast<int>(servers.size()), 3);
        for (ServerId s : servers)
            EXPECT_EQ(topo.rackOf(s).value, r);
    }
}

TEST(ClusterTopologyTest, AccessLinkCapacity)
{
    ClusterTopology topo(smallConfig());
    for (int s = 0; s < topo.numServers(); ++s) {
        EXPECT_DOUBLE_EQ(topo.serverLinkCapacity(ServerId(s)), 100.0);
        const Link &link = topo.link(topo.accessLink(ServerId(s)));
        EXPECT_EQ(link.kind, Link::Kind::ServerAccess);
        EXPECT_EQ(link.server.value, s);
    }
}

TEST(ClusterTopologyTest, CoreLinkEncodesOversubscription)
{
    // 3 servers x 100 Gbps / 2:1 oversubscription = 150 Gbps per rack.
    ClusterTopology topo(smallConfig());
    for (int r = 0; r < topo.numRacks(); ++r) {
        EXPECT_DOUBLE_EQ(topo.coreLinkCapacity(RackId(r)), 150.0);
        const Link &link = topo.link(topo.coreLink(RackId(r)));
        EXPECT_EQ(link.kind, Link::Kind::RackCore);
        EXPECT_EQ(link.rack.value, r);
    }
}

TEST(ClusterTopologyTest, FullBisectionCoreLink)
{
    ClusterConfig config = smallConfig();
    config.oversubscription = 1.0;
    ClusterTopology topo(config);
    EXPECT_DOUBLE_EQ(topo.coreLinkCapacity(RackId(0)), 300.0);
}

TEST(ClusterTopologyTest, PatDefaultsAndOverrides)
{
    ClusterTopology topo(smallConfig());
    EXPECT_DOUBLE_EQ(topo.torPat(RackId(1)), 500.0);
    topo.setTorPat(RackId(1), 42.0);
    EXPECT_DOUBLE_EQ(topo.torPat(RackId(1)), 42.0);
    EXPECT_DOUBLE_EQ(topo.torPat(RackId(0)), 500.0);
    topo.setAllTorPats(7.0);
    for (int r = 0; r < topo.numRacks(); ++r)
        EXPECT_DOUBLE_EQ(topo.torPat(RackId(r)), 7.0);
}

TEST(ClusterTopologyTest, NegativePatRejected)
{
    ClusterTopology topo(smallConfig());
    EXPECT_THROW(topo.setTorPat(RackId(0), -1.0), ConfigError);
    EXPECT_THROW(topo.setAllTorPats(-1.0), ConfigError);
}

TEST(ClusterTopologyTest, InvalidConfigsRejected)
{
    for (auto mutate : std::vector<void (*)(ClusterConfig &)>{
             [](ClusterConfig &c) { c.numRacks = 0; },
             [](ClusterConfig &c) { c.serversPerRack = -1; },
             [](ClusterConfig &c) { c.gpusPerServer = 0; },
             [](ClusterConfig &c) { c.serverLinkGbps = 0.0; },
             [](ClusterConfig &c) { c.oversubscription = 0.5; },
             [](ClusterConfig &c) { c.torPatGbps = -1.0; },
             [](ClusterConfig &c) { c.rtt = 0.0; }}) {
        ClusterConfig config = smallConfig();
        mutate(config);
        EXPECT_THROW(ClusterTopology topo(config), ConfigError);
    }
}

TEST(ClusterTopologyTest, LinkIdsAreDense)
{
    ClusterTopology topo(smallConfig());
    // Access links occupy [0, servers), core links [servers, links).
    EXPECT_EQ(topo.accessLink(ServerId(0)).value, 0);
    EXPECT_EQ(topo.accessLink(ServerId(11)).value, 11);
    EXPECT_EQ(topo.coreLink(RackId(0)).value, 12);
    EXPECT_EQ(topo.coreLink(RackId(3)).value, 15);
}

// ----------------------------------------------------------- gpu ledger

TEST(GpuLedgerTest, StartsFull)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    EXPECT_EQ(ledger.totalFreeGpus(), 48);
    for (int s = 0; s < topo.numServers(); ++s)
        EXPECT_EQ(ledger.freeGpus(ServerId(s)), 4);
    EXPECT_EQ(ledger.activeJobs(), 0u);
}

TEST(GpuLedgerTest, AllocateAndReleaseJob)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    ledger.allocate(ServerId(0), JobId(1), 3);
    ledger.allocate(ServerId(1), JobId(1), 2);
    EXPECT_EQ(ledger.freeGpus(ServerId(0)), 1);
    EXPECT_EQ(ledger.freeGpus(ServerId(1)), 2);
    EXPECT_EQ(ledger.totalFreeGpus(), 43);
    EXPECT_EQ(ledger.heldGpus(ServerId(0), JobId(1)), 3);
    EXPECT_EQ(ledger.activeJobs(), 1u);

    ledger.releaseJob(JobId(1));
    EXPECT_EQ(ledger.totalFreeGpus(), 48);
    EXPECT_EQ(ledger.freeGpus(ServerId(0)), 4);
    EXPECT_EQ(ledger.activeJobs(), 0u);
}

TEST(GpuLedgerTest, PartialRelease)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    ledger.allocate(ServerId(2), JobId(5), 4);
    ledger.release(ServerId(2), JobId(5), 1);
    EXPECT_EQ(ledger.freeGpus(ServerId(2)), 1);
    EXPECT_EQ(ledger.heldGpus(ServerId(2), JobId(5)), 3);
    ledger.release(ServerId(2), JobId(5), 3);
    EXPECT_EQ(ledger.heldGpus(ServerId(2), JobId(5)), 0);
    EXPECT_EQ(ledger.activeJobs(), 0u);
}

TEST(GpuLedgerTest, OverAllocationIsInternalError)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    EXPECT_THROW(ledger.allocate(ServerId(0), JobId(1), 5), InternalError);
    ledger.allocate(ServerId(0), JobId(1), 4);
    EXPECT_THROW(ledger.allocate(ServerId(0), JobId(2), 1), InternalError);
}

TEST(GpuLedgerTest, OverReleaseIsInternalError)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    ledger.allocate(ServerId(0), JobId(1), 2);
    EXPECT_THROW(ledger.release(ServerId(0), JobId(1), 3), InternalError);
    EXPECT_THROW(ledger.release(ServerId(1), JobId(1), 1), InternalError);
    EXPECT_THROW(ledger.release(ServerId(0), JobId(9), 1), InternalError);
}

TEST(GpuLedgerTest, ReleaseUnknownJobIsNoOp)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    EXPECT_NO_THROW(ledger.releaseJob(JobId(99)));
    EXPECT_EQ(ledger.totalFreeGpus(), 48);
}

TEST(GpuLedgerTest, ServersOfIsSorted)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    ledger.allocate(ServerId(7), JobId(3), 1);
    ledger.allocate(ServerId(2), JobId(3), 1);
    ledger.allocate(ServerId(5), JobId(3), 1);
    const auto servers = ledger.serversOf(JobId(3));
    ASSERT_EQ(servers.size(), 3u);
    EXPECT_EQ(servers[0].value, 2);
    EXPECT_EQ(servers[1].value, 5);
    EXPECT_EQ(servers[2].value, 7);
    EXPECT_TRUE(ledger.serversOf(JobId(4)).empty());
}

TEST(GpuLedgerTest, FreeGpusInRack)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    EXPECT_EQ(ledger.freeGpusInRack(RackId(0)), 12);
    ledger.allocate(ServerId(0), JobId(1), 4);
    ledger.allocate(ServerId(1), JobId(1), 1);
    EXPECT_EQ(ledger.freeGpusInRack(RackId(0)), 7);
    EXPECT_EQ(ledger.freeGpusInRack(RackId(1)), 12);
}

/** Property: random allocate/release sequences conserve GPUs. */
class GpuLedgerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GpuLedgerPropertyTest, RandomChurnConservesGpus)
{
    ClusterTopology topo(smallConfig());
    GpuLedger ledger(topo);
    Rng rng(static_cast<std::uint64_t>(GetParam()));

    std::vector<JobId> live;
    int next_job = 0;
    for (int step = 0; step < 400; ++step) {
        if (live.empty() || rng.uniform() < 0.6) {
            // Try to allocate a new job on a random server with space.
            const ServerId server(
                static_cast<int>(rng.uniformInt(0, topo.numServers() - 1)));
            const int free = ledger.freeGpus(server);
            if (free > 0) {
                const int want =
                    static_cast<int>(rng.uniformInt(1, free));
                const JobId id(next_job++);
                ledger.allocate(server, id, want);
                live.push_back(id);
            }
        } else {
            const auto victim = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            ledger.releaseJob(live[victim]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        }
        // Conservation: free + held == total, per server and globally.
        int total_free = 0;
        for (int s = 0; s < topo.numServers(); ++s) {
            const int free = ledger.freeGpus(ServerId(s));
            EXPECT_GE(free, 0);
            EXPECT_LE(free, topo.gpusPerServer());
            total_free += free;
        }
        EXPECT_EQ(total_free, ledger.totalFreeGpus());
    }
    for (JobId id : live)
        ledger.releaseJob(id);
    EXPECT_EQ(ledger.totalFreeGpus(), topo.totalGpus());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuLedgerPropertyTest,
                         ::testing::Range(0, 8));

} // namespace
} // namespace netpack
