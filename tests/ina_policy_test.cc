/**
 * @file
 * Tests for the reusable selective-INA policy, the runtime rebalancer
 * (the future-work extension), and the network models' INA update hook.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/ina_rebalancer.h"
#include "placement/ina_policy.h"
#include "sim/cluster_sim.h"
#include "sim/flow_model.h"
#include "sim/packet_model.h"
#include "placement/netpack_placer.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

ClusterTopology
makeTopo(int racks = 2, int servers_per_rack = 4, Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = racks;
    config.serversPerRack = servers_per_rack;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

PlacedJob
crossServerJob(int id, int s1, int s2, int ps)
{
    PlacedJob job;
    job.id = JobId(id);
    job.placement.workers[ServerId(s1)] = 2;
    job.placement.workers[ServerId(s2)] = 2;
    job.placement.psServer = ServerId(ps);
    return job;
}

MBytes
uniformVolume(JobId)
{
    return 500.0;
}

TEST(InaPolicy, AmplePatEnablesEverything)
{
    const ClusterTopology topo = makeTopo(2, 4, 1000.0);
    std::vector<PlacedJob> targets = {crossServerJob(0, 0, 1, 2),
                                      crossServerJob(1, 4, 5, 6)};
    assignSelectiveIna(topo, targets, {}, uniformVolume);
    for (const auto &job : targets)
        EXPECT_FALSE(job.placement.inaRacks.empty());
}

TEST(InaPolicy, ZeroPatDisablesEverything)
{
    const ClusterTopology topo = makeTopo(2, 4, 0.0);
    std::vector<PlacedJob> targets = {crossServerJob(0, 0, 1, 2)};
    assignSelectiveIna(topo, targets, {}, uniformVolume);
    EXPECT_TRUE(targets[0].placement.inaRacks.empty());
}

TEST(InaPolicy, LocalJobsNeverGetIna)
{
    const ClusterTopology topo = makeTopo();
    PlacedJob local;
    local.id = JobId(0);
    local.placement.workers[ServerId(0)] = 4;
    local.placement.psServer = ServerId(0);
    // Even a bogus pre-set INA rack must be cleared.
    local.placement.inaRacks = {RackId(0)};
    std::vector<PlacedJob> targets = {local};
    assignSelectiveIna(topo, targets, {}, uniformVolume);
    EXPECT_TRUE(targets[0].placement.inaRacks.empty());
}

TEST(InaPolicy, ReportsChangedJobs)
{
    const ClusterTopology topo = makeTopo(1, 4, 0.0);
    std::vector<PlacedJob> targets = {crossServerJob(0, 0, 1, 2)};
    targets[0].placement.inaRacks = {RackId(0)}; // will be disabled
    const InaAssignmentResult result =
        assignSelectiveIna(topo, targets, {}, uniformVolume);
    EXPECT_EQ(result.jobsChanged, 1);
}

TEST(InaPolicy, GuardObjectiveNeverRegresses)
{
    // Whatever the budget does, the shipped assignment's estimated
    // communication objective must be <= INA-for-all's.
    const ClusterTopology topo = makeTopo(1, 8, 60.0);
    std::vector<PlacedJob> targets;
    for (int j = 0; j < 4; ++j)
        targets.push_back(crossServerJob(j, 2 * j, 2 * j + 1, 7));

    std::vector<PlacedJob> all_enabled = targets;
    for (auto &job : all_enabled)
        job.placement.inaRacks = job.placement.allRacks(topo);

    assignSelectiveIna(topo, targets, {}, uniformVolume);

    WaterFillingEstimator wf(topo);
    const auto objective = [&](const std::vector<PlacedJob> &jobs) {
        const SteadyState steady = wf.estimate(jobs);
        double total = 0.0;
        for (const auto &job : jobs) {
            const Gbps rate = steady.jobThroughput(job.id);
            if (std::isfinite(rate))
                total += 500.0 / rate;
        }
        return total;
    };
    EXPECT_LE(objective(targets), objective(all_enabled) + 1e-9);
}

TEST(InaRebalancerTest, TogglesAfterChurn)
{
    // Two jobs on a scarce pool: with both running the budget forces a
    // choice; after one "finishes" the rebalancer re-enables the other.
    const ClusterTopology topo = makeTopo(1, 4, 20.0);
    InaRebalancer rebalancer(topo);

    std::vector<PlacedJob> running = {crossServerJob(0, 0, 1, 3),
                                      crossServerJob(1, 2, 3, 0)};
    rebalancer.rebalance(running, uniformVolume);

    running.erase(running.begin()); // job 0 finished
    running[0].placement.inaRacks.clear(); // pretend it was off
    const InaAssignmentResult result =
        rebalancer.rebalance(running, uniformVolume);
    EXPECT_FALSE(running[0].placement.inaRacks.empty());
    EXPECT_EQ(result.jobsChanged, 1);
}

TEST(NetworkModels, UpdateInaRacksTakesEffect)
{
    const ClusterTopology topo = makeTopo(1, 4, 400.0);
    FlowNetworkModel model(topo);
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 4;
    spec.iterations = 1000;
    Placement placement = crossServerJob(0, 0, 1, 2).placement;
    placement.inaRacks = {RackId(0)};
    // A second identical job shares the PS link, making flow counts
    // sensitive to aggregation.
    model.jobStarted(spec, placement, 0.0);
    JobSpec spec2 = spec;
    spec2.id = JobId(1);
    Placement placement2 = crossServerJob(1, 0, 1, 2).placement;
    placement2.inaRacks = {RackId(0)};
    model.jobStarted(spec2, placement2, 0.0);

    const Gbps with_ina = model.currentRate(JobId(0));
    model.updateInaRacks(JobId(0), {});
    model.updateInaRacks(JobId(1), {});
    const Gbps without_ina = model.currentRate(JobId(0));
    // Without aggregation the PS link carries 4 worker streams instead
    // of 2 merged ones: the rate must drop.
    EXPECT_LT(without_ina, with_ina);

    EXPECT_THROW(model.updateInaRacks(JobId(9), {}), InternalError);
}

TEST(NetworkModels, PacketModelUpdateInaRacks)
{
    const ClusterTopology topo = makeTopo(1, 4, 400.0);
    PacketNetworkModel model(topo);
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = 4;
    spec.iterations = 100000;
    Placement placement = crossServerJob(0, 0, 1, 2).placement;
    placement.inaRacks = {RackId(0)};
    model.jobStarted(spec, placement, 0.0);
    EXPECT_NO_THROW(model.updateInaRacks(JobId(0), {}));
    EXPECT_THROW(model.updateInaRacks(JobId(3), {}), InternalError);
}

TEST(ClusterSimRebalance, PeriodicRebalanceRunsAndCompletes)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    cluster.torPatGbps = 50.0; // scarce: rebalancing has work to do
    const ClusterTopology topo(cluster);

    SimConfig sim_config;
    sim_config.placementPeriod = 5.0;
    sim_config.inaRebalancePeriod = 20.0;
    ClusterSimulator sim(topo, std::make_unique<FlowNetworkModel>(topo),
                         std::make_unique<NetPackPlacer>(), sim_config);

    TraceGenConfig gen;
    gen.numJobs = 30;
    gen.seed = 5;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 8.0;
    gen.maxGpuDemand = 16;
    gen.durationLogMu = 4.0;
    const JobTrace trace = generateTrace(gen);
    const RunMetrics metrics = sim.run(trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
}

TEST(ClusterSimRebalance, RebalanceDoesNotHurtJct)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    cluster.torPatGbps = 50.0;
    const ClusterTopology topo(cluster);

    TraceGenConfig gen;
    gen.numJobs = 40;
    gen.seed = 9;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 8.0;
    gen.maxGpuDemand = 16;
    gen.durationLogMu = 4.0;
    const JobTrace trace = generateTrace(gen);

    const auto run = [&](Seconds rebalance_period) {
        SimConfig sim_config;
        sim_config.placementPeriod = 5.0;
        sim_config.inaRebalancePeriod = rebalance_period;
        ClusterSimulator sim(topo,
                             std::make_unique<FlowNetworkModel>(topo),
                             std::make_unique<NetPackPlacer>(),
                             sim_config);
        return sim.run(trace).avgJct();
    };
    const double without = run(0.0);
    const double with_rebalance = run(15.0);
    EXPECT_LE(with_rebalance, without * 1.05);
}

} // namespace
} // namespace netpack
