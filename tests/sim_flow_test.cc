/**
 * @file
 * Tests for the flow-level network model and the cluster manager loop:
 * analytic JCT checks, fair sharing, epoch batching, metrics, and
 * starvation aging.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/experiment.h"
#include "placement/baselines.h"
#include "sim/cluster_sim.h"
#include "sim/flow_model.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

ClusterConfig
smallCluster()
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 4;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    return config;
}

JobSpec
makeSpec(int id, int gpus, std::int64_t iterations,
         const std::string &model = "ResNet50", Seconds submit = 0.0)
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = iterations;
    spec.submitTime = submit;
    return spec;
}

// -------------------------------------------------------- model basics

TEST(FlowModel, LocalJobFinishesAtComputeTime)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    const auto spec = makeSpec(0, 4, 100);
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    model.jobStarted(spec, p, 0.0);

    const double expected =
        100.0 * ModelZoo::byName("ResNet50").computeTimePerIter;
    std::vector<JobId> completed;
    const Seconds t = model.advance(0.0, 1e9, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(t, expected, 1e-6);
    EXPECT_TRUE(std::isinf(model.currentRate(JobId(0))));
}

TEST(FlowModel, NetworkJobIncludesTransferTime)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    const auto spec = makeSpec(0, 8, 50);
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.workers[ServerId(1)] = 4;
    p.psServer = ServerId(2);
    p.inaRacks = {RackId(0)};
    model.jobStarted(spec, p, 0.0);

    const ModelProfile &m = ModelZoo::byName("ResNet50");
    // Water-filling gives the full 100 Gbps access rate.
    const double iter = m.computeTimePerIter +
                        units::transferTime(m.modelSizeMb, 100.0);
    std::vector<JobId> completed;
    const Seconds t = model.advance(0.0, 1e9, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(t, 50.0 * iter, 1e-6);
    EXPECT_NEAR(model.currentRate(JobId(0)), 100.0, 1e-6);
}

TEST(FlowModel, AdvanceStopsAtHorizon)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 1000), [&] {
        Placement p;
        p.workers[ServerId(0)] = 4;
        p.psServer = ServerId(0);
        return p;
    }(), 0.0);
    std::vector<JobId> completed;
    const Seconds t = model.advance(0.0, 1.0, completed);
    EXPECT_DOUBLE_EQ(t, 1.0);
    EXPECT_TRUE(completed.empty());
}

TEST(FlowModel, SharingSlowsJobsDown)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    // Two identical network jobs sharing the same PS access link.
    for (int j = 0; j < 2; ++j) {
        Placement p;
        p.workers[ServerId(0)] = 2;
        p.workers[ServerId(1)] = 2;
        p.psServer = ServerId(2);
        p.inaRacks = {RackId(0)};
        model.jobStarted(makeSpec(j, 4, 100, "VGG16"), p, 0.0);
    }
    EXPECT_NEAR(model.currentRate(JobId(0)), 50.0, 1e-6);
    EXPECT_NEAR(model.currentRate(JobId(1)), 50.0, 1e-6);

    std::vector<JobId> completed;
    const Seconds t = model.advance(0.0, 1e9, completed);
    EXPECT_EQ(completed.size(), 2u); // identical jobs finish together
    const ModelProfile &m = ModelZoo::byName("VGG16");
    const double iter = m.computeTimePerIter +
                        units::transferTime(m.modelSizeMb, 50.0);
    EXPECT_NEAR(t, 100.0 * iter, 1e-6);
}

TEST(FlowModel, CompletionFreesBandwidthForTheSurvivor)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.workers[ServerId(1)] = 2;
    p.psServer = ServerId(2);
    p.inaRacks = {RackId(0)};
    model.jobStarted(makeSpec(0, 4, 10, "VGG16"), p, 0.0);
    model.jobStarted(makeSpec(1, 4, 100, "VGG16"), p, 0.0);

    std::vector<JobId> completed;
    const Seconds t1 = model.advance(0.0, 1e9, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].value, 0);
    model.jobFinished(JobId(0), t1);
    // The survivor now gets the full 100 Gbps.
    EXPECT_NEAR(model.currentRate(JobId(1)), 100.0, 1e-6);
}

TEST(FlowModel, StartingUnknownTwiceOrFinishingUnknownThrows)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    model.jobStarted(makeSpec(0, 4, 10), p, 0.0);
    EXPECT_THROW(model.jobStarted(makeSpec(0, 4, 10), p, 0.0),
                 InternalError);
    EXPECT_THROW(model.jobFinished(JobId(7), 0.0), InternalError);
}

// ------------------------------------------------------- manager loop

TEST(ClusterSim, SingleJobMetrics)
{
    const ClusterTopology topo(smallCluster());
    ExperimentConfig config;
    config.cluster = smallCluster();
    config.sim.placementPeriod = 1.0;

    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, 100)});
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 1u);
    const JobRecord &record = metrics.records[0];
    const double compute =
        100.0 * ModelZoo::byName("ResNet50").computeTimePerIter;
    // Placed at the first epoch (t = 0), runs compute-only.
    EXPECT_NEAR(record.jct(), compute, 1e-6);
    EXPECT_NEAR(record.distributionEfficiency(), 1.0, 1e-6);
    EXPECT_GT(metrics.placementRounds, 0);
    EXPECT_GT(metrics.avgGpuUtilization, 0.0);
}

TEST(ClusterSim, QueueingShowsUpInJct)
{
    // A 1-server cluster forces the second job to wait for the first.
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 1;
    ExperimentConfig config;
    config.cluster = cluster;
    config.sim.placementPeriod = 1.0;

    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, 100),
                                        makeSpec(1, 4, 100)});
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 2u);
    const double compute =
        100.0 * ModelZoo::byName("ResNet50").computeTimePerIter;
    EXPECT_GT(metrics.records[1].jct(), compute + 1.0);
    EXPECT_LT(metrics.records[1].distributionEfficiency(), 1.0);
    EXPECT_GT(metrics.records[1].waitTime(), compute * 0.5);
}

TEST(ClusterSim, ArrivalsAfterStartArePlacedAtLaterEpochs)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    config.sim.placementPeriod = 5.0;

    JobTrace trace(std::vector<JobSpec>{
        makeSpec(0, 4, 10, "ResNet50", 0.0),
        makeSpec(1, 4, 10, "ResNet50", 12.0)});
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 2u);
    // Job 1 arrives at 12 s and must wait for the epoch at 15 s.
    EXPECT_NEAR(metrics.records[1].startTime, 15.0, 1e-6);
}

TEST(ClusterSim, OversizedJobRejected)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 10000, 10)});
    EXPECT_THROW(runExperiment(config, trace), ConfigError);
}

TEST(ClusterSim, AllTraceJobsComplete)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    config.sim.placementPeriod = 10.0;

    TraceGenConfig gen;
    gen.numJobs = 60;
    gen.seed = 17;
    gen.maxGpuDemand = 16;
    gen.durationLogMu = 4.0; // short jobs keep the test fast
    gen.durationLogSigma = 0.8;
    const JobTrace trace = generateTrace(gen);
    const RunMetrics metrics = runExperiment(config, trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
    for (const auto &record : metrics.records) {
        EXPECT_GE(record.startTime, record.submitTime);
        EXPECT_GT(record.finishTime, record.startTime);
    }
    EXPECT_GT(metrics.makespan, 0.0);
}

TEST(ClusterSim, DeterministicAcrossRuns)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    TraceGenConfig gen;
    gen.numJobs = 40;
    gen.seed = 23;
    gen.durationLogMu = 4.0;
    const JobTrace trace = generateTrace(gen);
    const RunMetrics a = runExperiment(config, trace);
    const RunMetrics b = runExperiment(config, trace);
    EXPECT_DOUBLE_EQ(a.avgJct(), b.avgJct());
    EXPECT_DOUBLE_EQ(a.avgDe(), b.avgDe());
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(ClusterSim, ObserverSamplesPeriodically)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    config.sim.samplePeriod = 1.0;

    ClusterTopology topo(config.cluster);
    ClusterSimulator sim(topo, makeNetworkModel(config, topo),
                         makePlacerByName("NetPack"), config.sim);
    int samples = 0;
    sim.setObserver([&](Seconds, const NetworkModel &,
                        const std::vector<PlacedJob> &) { ++samples; });

    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, 200)});
    sim.run(trace);
    EXPECT_GT(samples, 5);
}

TEST(ClusterSim, StarvationBoostEventuallyPlacesBigJob)
{
    // One 16-GPU job competes with a stream of small jobs; the value
    // boost must let it through once GPUs free up.
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1; // 16 GPUs total
    ExperimentConfig config;
    config.cluster = cluster;
    config.sim.placementPeriod = 2.0;
    config.sim.starvationBoost = 1.0;

    std::vector<JobSpec> jobs;
    jobs.push_back(makeSpec(0, 16, 50, "ResNet50", 0.0));
    for (int i = 1; i <= 8; ++i)
        jobs.push_back(makeSpec(i, 2, 50, "ResNet50", 0.1 * i));
    JobTrace trace(std::move(jobs));
    const RunMetrics metrics = runExperiment(config, trace);
    EXPECT_EQ(metrics.records.size(), trace.size());
}

TEST(ClusterSim, FailureRestartsAffectedJob)
{
    // One long job on a known server; the server fails mid-run, so the
    // job restarts and its JCT roughly doubles.
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 1; // the job must land on server 0
    ExperimentConfig config;
    config.cluster = cluster;
    config.sim.placementPeriod = 1.0;

    const double compute =
        ModelZoo::byName("ResNet50").computeTimePerIter;
    const std::int64_t iters = 500;
    const double clean_jct = static_cast<double>(iters) * compute;

    ServerFailure failure;
    failure.time = clean_jct * 0.8; // late enough to hurt
    failure.server = ServerId(0);
    failure.downtime = 5.0;
    config.sim.failures = {failure};

    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, iters)});
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 1u);
    EXPECT_EQ(metrics.jobRestarts, 1);
    // JCT >= lost work (0.8x) + downtime + full rerun (1.0x).
    EXPECT_GT(metrics.records[0].jct(), clean_jct * 1.7);
}

TEST(ClusterSim, FailureOfIdleServerIsHarmless)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    config.sim.placementPeriod = 1.0;
    ServerFailure failure;
    failure.time = 2.0;
    failure.server = ServerId(7); // last server: placement prefers 0
    failure.downtime = 10.0;
    config.sim.failures = {failure};

    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, 50)});
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 1u);
    EXPECT_EQ(metrics.jobRestarts, 0);
}

TEST(ClusterSim, RecoveryRestoresCapacity)
{
    // 2 servers; one fails for a while; a job needing both servers'
    // GPUs can only start after recovery — but must eventually finish.
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 2; // 8 GPUs
    ExperimentConfig config;
    config.cluster = cluster;
    config.sim.placementPeriod = 1.0;
    ServerFailure failure;
    failure.time = 0.5;
    failure.server = ServerId(1);
    failure.downtime = 30.0;
    config.sim.failures = {failure};

    JobTrace trace(std::vector<JobSpec>{
        makeSpec(0, 8, 50, "ResNet50", 1.0)}); // needs both servers
    const RunMetrics metrics = runExperiment(config, trace);
    ASSERT_EQ(metrics.records.size(), 1u);
    EXPECT_GE(metrics.records[0].startTime, 30.0);
}

TEST(FlowModel, ProgressFractionTracksIterations)
{
    const ClusterTopology topo(smallCluster());
    FlowNetworkModel model(topo);
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    model.jobStarted(makeSpec(0, 4, 100), p, 0.0);
    EXPECT_NEAR(model.progressFraction(JobId(0)), 0.0, 1e-9);

    const double compute =
        ModelZoo::byName("ResNet50").computeTimePerIter;
    std::vector<JobId> completed;
    model.advance(0.0, 50.0 * compute, completed);
    EXPECT_NEAR(model.progressFraction(JobId(0)), 0.5, 1e-6);
    EXPECT_DOUBLE_EQ(model.progressFraction(JobId(9)), 0.0);
}

TEST(ClusterSim, CheckpointingReducesLostWork)
{
    // Same failure scenario, with and without checkpoints every 50
    // iterations: the checkpointed run must finish sooner.
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 1;
    const double compute =
        ModelZoo::byName("ResNet50").computeTimePerIter;
    const std::int64_t iters = 500;

    const auto run = [&](std::int64_t checkpoint) {
        ExperimentConfig config;
        config.cluster = cluster;
        config.sim.placementPeriod = 1.0;
        config.sim.checkpointIters = checkpoint;
        ServerFailure failure;
        failure.time = static_cast<double>(iters) * compute * 0.8;
        failure.server = ServerId(0);
        failure.downtime = 5.0;
        config.sim.failures = {failure};
        JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, iters)});
        const RunMetrics metrics = runExperiment(config, trace);
        return metrics.records[0].jct();
    };
    const double scratch = run(0);
    const double checkpointed = run(50);
    // From-scratch reruns ~500 iterations; checkpointing loses < 50.
    EXPECT_LT(checkpointed + 300.0 * compute, scratch);
}

TEST(ClusterSim, InvalidFailureConfigRejected)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    ServerFailure failure;
    failure.time = 1.0;
    failure.server = ServerId(9999);
    config.sim.failures = {failure};
    JobTrace trace(std::vector<JobSpec>{makeSpec(0, 4, 10)});
    EXPECT_THROW(runExperiment(config, trace), ConfigError);
}

TEST(ClusterSim, ComparePlacersAndNormalize)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    TraceGenConfig gen;
    gen.numJobs = 30;
    gen.seed = 31;
    gen.durationLogMu = 4.0;
    const JobTrace trace = generateTrace(gen);

    const auto results = comparePlacers(config, trace, {"NetPack", "GB"});
    ASSERT_EQ(results.size(), 2u);
    std::map<std::string, double> jct;
    for (const auto &[name, metrics] : results)
        jct[name] = metrics.avgJct();
    const auto normalized = normalizeTo(jct, "NetPack");
    EXPECT_DOUBLE_EQ(normalized.at("NetPack"), 1.0);
    EXPECT_GT(normalized.at("GB"), 0.0);
    EXPECT_THROW(normalizeTo(jct, "Nope"), ConfigError);
}

} // namespace
} // namespace netpack
