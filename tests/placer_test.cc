/**
 * @file
 * Differential tests for the allocation-free NetPack placer rewrite:
 * the optimized NetPackPlacer must reproduce the retained naive
 * ReferenceNetPackPlacer decision-for-decision (placements, deferrals,
 * and Equation-1 scores, compared bitwise) over randomized topologies,
 * steady states, and config ablations. Every scenario additionally runs
 * jobs-sweep lanes (jobs = 2/4/7) of the intra-epoch parallel fan-out,
 * which must stay byte-identical to the reference for any worker count.
 * Also covers the SteadyStateView caching/invalidation contract through
 * PlacementContext.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "common/rng.h"
#include "core/placement_context.h"
#include "placement/baselines.h"
#include "placement/netpack_placer.h"
#include "placement/reference_placer.h"

namespace netpack {
namespace {

const char *const kModels[] = {"AlexNet", "VGG11",    "VGG16",
                               "VGG19",   "ResNet50", "ResNet101"};

/** Exact (bitwise) double equality, so FP drift cannot hide. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void
expectSamePlacement(const Placement &opt, const Placement &ref,
                    const std::string &what)
{
    EXPECT_EQ(opt.workers, ref.workers) << what;
    EXPECT_EQ(opt.psServer, ref.psServer) << what;
    EXPECT_EQ(opt.extraPsServers, ref.extraPsServers) << what;
    EXPECT_EQ(opt.inaRacks, ref.inaRacks) << what;
}

void
expectSameBatchResult(const BatchResult &opt, const BatchResult &ref,
                      const std::string &what)
{
    ASSERT_EQ(opt.placed.size(), ref.placed.size()) << what;
    for (std::size_t i = 0; i < opt.placed.size(); ++i) {
        EXPECT_EQ(opt.placed[i].id, ref.placed[i].id) << what;
        expectSamePlacement(opt.placed[i].placement,
                            ref.placed[i].placement,
                            what + " job " +
                                std::to_string(opt.placed[i].id.value));
    }
    ASSERT_EQ(opt.deferred.size(), ref.deferred.size()) << what;
    for (std::size_t i = 0; i < opt.deferred.size(); ++i)
        EXPECT_EQ(opt.deferred[i], ref.deferred[i]) << what;
}

void
expectSameScores(const std::vector<double> &opt,
                 const std::vector<double> &ref, const std::string &what)
{
    ASSERT_EQ(opt.size(), ref.size()) << what;
    for (std::size_t i = 0; i < opt.size(); ++i)
        EXPECT_TRUE(sameBits(opt[i], ref[i]))
            << what << " score " << i << ": " << opt[i]
            << " != " << ref[i];
}

/**
 * One randomized scenario: a random small cluster (sometimes
 * oversubscribed, sometimes two-tier), a random NetPackConfig (shard
 * counts, ablations), and several batches with retirement churn in
 * between so later batches place against a non-trivial steady state.
 */
class PlacerDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PlacerDifferentialTest, OptimizedMatchesReferenceExactly)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

    ClusterConfig cluster;
    cluster.numRacks = static_cast<int>(rng.uniformInt(2, 6));
    cluster.serversPerRack = static_cast<int>(rng.uniformInt(2, 6));
    cluster.gpusPerServer = static_cast<int>(rng.uniformInt(2, 4));
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = rng.uniformInt(0, 1) ? 400.0 : 1000.0;
    cluster.oversubscription = rng.uniformInt(0, 2) == 0 ? 4.0 : 1.0;
    if (rng.uniformInt(0, 2) == 0 && cluster.numRacks >= 4) {
        cluster.numRacks -= cluster.numRacks % 2; // pods need even racks
        cluster.racksPerPod = 2;
        cluster.podOversubscription = rng.uniformInt(0, 1) ? 2.0 : 1.0;
    }
    const ClusterTopology topo(cluster);

    NetPackConfig config;
    config.maxFlowsTracked = rng.uniformInt(0, 1) ? 16 : 4;
    config.twoDimWeight = rng.uniformInt(0, 3) != 0;
    config.oversubPenalty = rng.uniformInt(0, 3) != 0;
    config.selectiveIna = rng.uniformInt(0, 1) != 0;
    config.psShards = rng.uniformInt(0, 2) == 0 ? 3 : 1;

    NetPackPlacer opt(config);
    ReferenceNetPackPlacer ref(config);
    GpuLedger opt_gpus(topo), ref_gpus(topo);
    PlacementContext opt_ctx(topo), ref_ctx(topo);
    std::vector<JobId> alive;

    // Jobs-sweep lanes: the same scenario with the intra-epoch fan-out
    // at several worker counts, each compared bitwise against the
    // reference. 7 intentionally exceeds the DP-table count of most of
    // these small scenarios, so idle workers are covered too. The lanes
    // live behind unique_ptr because the placer is immovable (it owns a
    // mutex and, once fanned, a thread pool).
    struct ParLane
    {
        ParLane(const NetPackConfig &par_config,
                const ClusterTopology &par_topo)
            : jobs(par_config.jobs), placer(par_config), gpus(par_topo),
              ctx(par_topo)
        {
        }
        int jobs;
        NetPackPlacer placer;
        GpuLedger gpus;
        PlacementContext ctx;
    };
    std::vector<std::unique_ptr<ParLane>> par_lanes;
    for (const int par_jobs : {2, 4, 7}) {
        NetPackConfig par_config = config;
        par_config.jobs = par_jobs;
        par_lanes.push_back(std::make_unique<ParLane>(par_config, topo));
    }

    int next_id = 1;
    const int rounds = static_cast<int>(rng.uniformInt(2, 4));
    for (int round = 0; round < rounds; ++round) {
        std::vector<JobSpec> batch;
        const int jobs = static_cast<int>(rng.uniformInt(2, 6));
        for (int j = 0; j < jobs; ++j) {
            JobSpec spec;
            spec.id = JobId(next_id++);
            spec.modelName = kModels[rng.uniformInt(0, 5)];
            // Mostly multi-server demands so the DP path dominates;
            // small demands keep the single-server fast path covered.
            spec.gpuDemand = static_cast<int>(
                rng.uniformInt(1, 3 * cluster.gpusPerServer));
            spec.iterations = 100;
            spec.value = rng.uniform(0.5, 5.0);
            batch.push_back(spec);
        }

        const BatchResult opt_result =
            opt.placeBatch(batch, topo, opt_gpus, opt_ctx);
        const BatchResult ref_result =
            ref.placeBatch(batch, topo, ref_gpus, ref_ctx);

        const std::string what = "scenario " +
                                 std::to_string(GetParam()) + " round " +
                                 std::to_string(round);
        expectSameBatchResult(opt_result, ref_result, what);
        expectSameScores(opt.lastScores(), ref.lastScores(), what);

        for (const auto &lane : par_lanes) {
            const BatchResult par_result =
                lane->placer.placeBatch(batch, topo, lane->gpus,
                                        lane->ctx);
            const std::string par_what =
                what + " jobs=" + std::to_string(lane->jobs);
            expectSameBatchResult(par_result, ref_result, par_what);
            expectSameScores(lane->placer.lastScores(),
                             ref.lastScores(), par_what);
        }
        if (::testing::Test::HasFailure())
            return; // diverged states make later rounds uninformative

        for (const PlacedJob &job : opt_result.placed)
            alive.push_back(job.id);

        // Retire a random prefix of the running jobs so the next round
        // sees churned occupancy and a re-converged steady state.
        const auto retire = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(alive.size()) / 2));
        for (std::size_t k = 0; k < retire; ++k) {
            const JobId victim = alive[k];
            opt_gpus.releaseJob(victim);
            ref_gpus.releaseJob(victim);
            opt_ctx.removeJob(victim);
            ref_ctx.removeJob(victim);
            for (const auto &lane : par_lanes) {
                lane->gpus.releaseJob(victim);
                lane->ctx.removeJob(victim);
            }
        }
        alive.erase(alive.begin(),
                    alive.begin() + static_cast<std::ptrdiff_t>(retire));
    }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PlacerDifferentialTest,
                         ::testing::Range(0, 120));

/** The paper-scale shape (oversubscribed), one sizable batch. */
TEST(PlacerDifferential, SimulatorScaleOversubscribed)
{
    ClusterConfig cluster;
    cluster.numRacks = 16;
    cluster.serversPerRack = 16;
    cluster.gpusPerServer = 4;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 1000.0;
    cluster.oversubscription = 4.0;
    const ClusterTopology topo(cluster);

    NetPackPlacer opt;
    ReferenceNetPackPlacer ref;
    GpuLedger opt_gpus(topo), ref_gpus(topo);
    PlacementContext opt_ctx(topo), ref_ctx(topo);

    Rng rng(99);
    std::vector<JobSpec> batch;
    for (int j = 0; j < 24; ++j) {
        JobSpec spec;
        spec.id = JobId(j + 1);
        spec.modelName = kModels[rng.uniformInt(0, 5)];
        spec.gpuDemand = static_cast<int>(rng.uniformInt(2, 32));
        spec.iterations = 100;
        spec.value = rng.uniform(0.5, 5.0);
        batch.push_back(spec);
    }
    const BatchResult opt_result =
        opt.placeBatch(batch, topo, opt_gpus, opt_ctx);
    const BatchResult ref_result =
        ref.placeBatch(batch, topo, ref_gpus, ref_ctx);
    expectSameBatchResult(opt_result, ref_result, "simulator scale");
    expectSameScores(opt.lastScores(), ref.lastScores(),
                     "simulator scale");
}

/** The factory exposes the reference placer for tooling. */
TEST(PlacerDifferential, FactoryBuildsReferencePlacer)
{
    const auto placer = makePlacerByName("NetPackRef");
    EXPECT_EQ(placer->name(), "NetPackRef");
}

// ---------------------------------------------------- SteadyStateView

TEST(SteadyStateViewTest, CachedUntilContextMutates)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);

    const SteadyStateView &view = ctx.steadyStateView();
    EXPECT_EQ(ctx.stats().viewRebuilds, 1);
    EXPECT_EQ(ctx.stats().viewReuses, 0);
    EXPECT_EQ(view.serverFlows.size(),
              static_cast<std::size_t>(topo.numServers()));
    EXPECT_EQ(view.rackFlows.size(),
              static_cast<std::size_t>(topo.numRacks()));

    // Second fetch with no mutation: same snapshot, no rebuild.
    ctx.steadyStateView();
    EXPECT_EQ(ctx.stats().viewRebuilds, 1);
    EXPECT_EQ(ctx.stats().viewReuses, 1);

    // A mutation invalidates the snapshot; the next fetch rebuilds and
    // reflects the new job's flows.
    Placement placement;
    placement.workers[ServerId(0)] = 2;
    placement.workers[ServerId(5)] = 2;
    placement.psServer = ServerId(0);
    placement.inaRacks = placement.allRacks(topo);
    ctx.addJob(JobId(1), placement);
    const SteadyStateView &after = ctx.steadyStateView();
    EXPECT_EQ(ctx.stats().viewRebuilds, 2);
    EXPECT_GT(after.serverFlows[5], 0);

    // The snapshot mirrors the SteadyState accessors entry for entry.
    const SteadyState &steady = ctx.steadyState();
    for (int s = 0; s < topo.numServers(); ++s) {
        const auto si = static_cast<std::size_t>(s);
        EXPECT_EQ(after.serverFlows[si],
                  steady.serverFlows(topo, ServerId(s)));
        EXPECT_EQ(after.serverAvailBw[si],
                  steady.serverAvailBw(topo, ServerId(s)));
    }
    for (int r = 0; r < topo.numRacks(); ++r) {
        const auto ri = static_cast<std::size_t>(r);
        EXPECT_EQ(after.rackFlows[ri], steady.rackFlows(topo, RackId(r)));
        EXPECT_EQ(after.rackAvailBw[ri],
                  steady.rackAvailBw(topo, RackId(r)));
    }
    EXPECT_EQ(after.patResidual, steady.patResidual);

    // Removal invalidates too.
    ctx.removeJob(JobId(1));
    ctx.steadyStateView();
    EXPECT_EQ(ctx.stats().viewRebuilds, 3);
}

TEST(SteadyStateViewTest, TwoTierCopiesPodUplinks)
{
    ClusterConfig cluster;
    cluster.numRacks = 4;
    cluster.serversPerRack = 2;
    cluster.gpusPerServer = 4;
    cluster.racksPerPod = 2;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);

    Placement placement;
    placement.workers[ServerId(0)] = 1;
    placement.workers[ServerId(7)] = 1;
    placement.psServer = ServerId(0);
    placement.inaRacks = placement.allRacks(topo);
    ctx.addJob(JobId(1), placement);

    const SteadyStateView &view = ctx.steadyStateView();
    ASSERT_EQ(view.podUplinkFlows.size(),
              static_cast<std::size_t>(topo.numPods()));
    const SteadyState &steady = ctx.steadyState();
    for (int p = 0; p < topo.numPods(); ++p) {
        const auto pi = static_cast<std::size_t>(p);
        const auto li = topo.podUplink(p).index();
        EXPECT_EQ(view.podUplinkFlows[pi], steady.linkFlows[li]);
        EXPECT_EQ(view.podUplinkAvailBw[pi], steady.linkResidual[li]);
    }
}

} // namespace
} // namespace netpack
