/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, strings, tables,
 * units, and the error-handling macros.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/units.h"

namespace netpack {
namespace {

// ---------------------------------------------------------------- check

TEST(Check, PassingCheckDoesNotThrow)
{
    EXPECT_NO_THROW(NETPACK_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsInternalError)
{
    EXPECT_THROW(NETPACK_CHECK(1 == 2), InternalError);
}

TEST(Check, FailingCheckMsgCarriesMessage)
{
    try {
        NETPACK_CHECK_MSG(false, "value was " << 42);
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

TEST(Check, FailingRequireThrowsConfigError)
{
    EXPECT_THROW(NETPACK_REQUIRE(false, "bad input"), ConfigError);
}

TEST(Check, RequireMessageNamesTheCondition)
{
    try {
        const int gpus = -1;
        NETPACK_REQUIRE(gpus >= 0, "gpus = " << gpus);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("gpus >= 0"), std::string::npos);
        EXPECT_NE(what.find("gpus = -1"), std::string::npos);
    }
}

// ------------------------------------------------------------------ rng

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusively)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.normal(10.0, 3.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.exponential(0.5));
    EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanMatchesSmallLambda)
{
    Rng rng(29);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.poisson(4.0)));
    EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesLargeLambda)
{
    Rng rng(31);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.poisson(100.0)));
    EXPECT_NEAR(stats.mean(), 100.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(37);
    EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(41);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(1.0, 2.0), 0.0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(43);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent() == child();
    EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, EmptyDefaults)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_TRUE(std::isinf(stats.min()));
    EXPECT_TRUE(std::isinf(stats.max()));
}

TEST(RunningStats, KnownSequence)
{
    RunningStats stats;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stats.min(), 2.0);
    EXPECT_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined)
{
    RunningStats a, b, all;
    Rng rng(47);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(3.0, 2.0);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, MergeIntoEmptyAdoptsOther)
{
    RunningStats empty, b;
    b.add(4.0);
    b.add(8.0);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 6.0);
    EXPECT_EQ(empty.min(), 4.0);
    EXPECT_EQ(empty.max(), 8.0);
}

TEST(RunningStats, MergeDisjointRangesTracksExtremaAndVariance)
{
    RunningStats low, high, all;
    for (double v : {1.0, 2.0, 3.0}) {
        low.add(v);
        all.add(v);
    }
    for (double v : {100.0, 200.0}) {
        high.add(v);
        all.add(v);
    }
    low.merge(high);
    EXPECT_EQ(low.count(), 5u);
    EXPECT_EQ(low.min(), 1.0);
    EXPECT_EQ(low.max(), 200.0);
    EXPECT_NEAR(low.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(low.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, MedianOfOddCount)
{
    SampleSet samples;
    for (double v : {5.0, 1.0, 3.0})
        samples.add(v);
    EXPECT_DOUBLE_EQ(samples.median(), 3.0);
}

TEST(SampleSet, PercentileInterpolates)
{
    SampleSet samples;
    for (double v : {10.0, 20.0, 30.0, 40.0})
        samples.add(v);
    EXPECT_DOUBLE_EQ(samples.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(samples.percentile(100.0), 40.0);
    EXPECT_DOUBLE_EQ(samples.percentile(50.0), 25.0);
}

TEST(SampleSet, PercentileOfEmptyThrows)
{
    SampleSet samples;
    EXPECT_THROW(samples.percentile(50.0), ConfigError);
}

TEST(SampleSet, PercentileOutOfRangeThrows)
{
    SampleSet samples;
    samples.add(1.0);
    EXPECT_THROW(samples.percentile(-1.0), ConfigError);
    EXPECT_THROW(samples.percentile(101.0), ConfigError);
}

TEST(SampleSet, AddAfterQueryInvalidatesCache)
{
    SampleSet samples;
    samples.add(1.0);
    EXPECT_DOUBLE_EQ(samples.median(), 1.0);
    samples.add(3.0);
    EXPECT_DOUBLE_EQ(samples.median(), 2.0);
}

TEST(SampleSet, SingleSampleAllPercentilesCollapse)
{
    SampleSet samples;
    samples.add(7.5);
    EXPECT_DOUBLE_EQ(samples.percentile(0.0), 7.5);
    EXPECT_DOUBLE_EQ(samples.percentile(50.0), 7.5);
    EXPECT_DOUBLE_EQ(samples.percentile(100.0), 7.5);
}

TEST(SampleSet, PercentileCacheInvalidatedByAdd)
{
    SampleSet samples;
    for (double v : {10.0, 20.0})
        samples.add(v);
    EXPECT_DOUBLE_EQ(samples.percentile(100.0), 20.0);
    samples.add(30.0); // must re-sort, not reuse the cached order
    EXPECT_DOUBLE_EQ(samples.percentile(100.0), 30.0);
    EXPECT_DOUBLE_EQ(samples.percentile(0.0), 10.0);
}

TEST(Correlation, PerfectlyLinearIsOne)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + 1.0);
    }
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, AntiCorrelatedIsMinusOne)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(-3.0 * i);
    }
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesGivesZero)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(LinearFitTest, RecoversSlopeAndIntercept)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(4.0 * i - 2.0);
    }
    const LinearFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 4.0, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyFitHasReasonableR2)
{
    Rng rng(53);
    std::vector<double> xs, ys;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(i);
        ys.push_back(2.0 * i + rng.normal(0.0, 5.0));
    }
    const LinearFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.05);
    EXPECT_GT(fit.r2, 0.99);
}

// -------------------------------------------------------------- strings

TEST(Strings, SplitBasic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields)
{
    const auto parts = split("a,,c,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, FormatDoublePrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
}

TEST(Strings, FormatCountScales)
{
    EXPECT_EQ(formatCount(1500.0), "1.5K");
    EXPECT_EQ(formatCount(2.5e6), "2.5M");
    EXPECT_EQ(formatCount(3.0e9), "3.0G");
    EXPECT_EQ(formatCount(42.0), "42");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("netpack", "net"));
    EXPECT_FALSE(startsWith("net", "netpack"));
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("VGG16"), "vgg16");
}

// ---------------------------------------------------------------- table

TEST(TableTest, AlignedOutputContainsAllCells)
{
    Table table({"name", "jct"});
    table.addRow({"NetPack", "1.00"});
    table.addRow({"GB", "1.45"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("NetPack"), std::string::npos);
    EXPECT_NE(out.find("1.45"), std::string::npos);
}

TEST(TableTest, RowArityMismatchThrows)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), ConfigError);
}

TEST(TableTest, CsvQuotesSpecialCharacters)
{
    Table table({"k", "v"});
    table.addRow({"with,comma", "with\"quote"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_NE(oss.str().find("\"with,comma\""), std::string::npos);
    EXPECT_NE(oss.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, DoubleRowHelper)
{
    Table table({"label", "x", "y"});
    table.addRow("r", {1.5, 2.25}, 2);
    std::ostringstream oss;
    table.print(oss);
    EXPECT_NE(oss.str().find("2.25"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 1u);
}

// ---------------------------------------------------------------- units

TEST(Units, TransferTimeRoundTrip)
{
    // 1000 MB at 8 Gbps: 8e9 bits / 8e9 bps = 1 s.
    EXPECT_NEAR(units::transferTime(1000.0, 8.0), 1.0, 1e-12);
    EXPECT_NEAR(units::volumeAtRate(8.0, 1.0), 1000.0, 1e-9);
}

TEST(Units, PatFromMemoryMatchesDefinition)
{
    // 1000 aggregators x 1 KB at 100 us RTT: 8e6 bits / 1e-4 s = 80 Gbps.
    EXPECT_NEAR(units::patFromMemory(1000.0, 1000.0, 100e-6), 80.0, 1e-9);
    EXPECT_NEAR(units::memoryForPat(80.0, 1000.0, 100e-6), 1000.0, 1e-6);
}

TEST(Units, PatMemoryInverse)
{
    for (double pat : {1.0, 10.0, 400.0}) {
        const double mem = units::memoryForPat(pat, 256.0, 50e-6);
        EXPECT_NEAR(units::patFromMemory(mem, 256.0, 50e-6), pat, 1e-9);
    }
}

} // namespace
} // namespace netpack
