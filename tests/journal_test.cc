/**
 * @file
 * netpack::journal end-to-end: serialization round-trips, record →
 * read-back, the replay-verify zero-divergence acceptance criterion,
 * snapshot/resume bit-identity with the uninterrupted run, the
 * recordRun resume/reuse/re-record paths, reader strictness and the
 * tolerant unknown-kind contract, and the what-if engine.
 */

#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "bench_util.h"
#include "journal/journal.h"
#include "journal/record.h"
#include "journal/replayer.h"
#include "journal/serialize.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "placement/baselines.h"
#include "sim/cluster_sim.h"

namespace netpack {
namespace journal {
namespace {

// --- fixtures ----------------------------------------------------------

/** A small flow-fidelity experiment that still exercises contention. */
ExperimentConfig
smallConfig()
{
    ExperimentConfig config;
    config.cluster.numRacks = 2;
    config.cluster.serversPerRack = 4;
    config.cluster.gpusPerServer = 4;
    config.cluster.torPatGbps = 200.0;
    config.sim.placementPeriod = 5.0;
    config.placer = "NetPack";
    return config;
}

JobTrace
smallTrace(std::uint64_t seed = 7, int jobs = 24)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 5.0;
    gen.maxGpuDemand = 16;
    gen.meanInterarrival = 2.0;
    gen.durationLogMu = 3.8;
    return generateTrace(gen);
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Serialize through the compact JsonWriter the journal itself uses. */
template <typename Fn>
std::string
jsonOf(Fn &&write)
{
    std::ostringstream oss;
    obs::JsonWriter json(oss, 0);
    write(json);
    return oss.str();
}

/**
 * Bit-identical equality over everything deterministic in a run.
 * placementSeconds is wall-clock and legitimately differs.
 */
void
expectMetricsIdentical(const RunMetrics &a, const RunMetrics &b)
{
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(a.records[i].spec.id, b.records[i].spec.id);
        EXPECT_EQ(a.records[i].submitTime, b.records[i].submitTime);
        EXPECT_EQ(a.records[i].startTime, b.records[i].startTime);
        EXPECT_EQ(a.records[i].finishTime, b.records[i].finishTime);
        EXPECT_EQ(jsonOf([&](obs::JsonWriter &json) {
                      writePlacement(json, a.records[i].placement);
                  }),
                  jsonOf([&](obs::JsonWriter &json) {
                      writePlacement(json, b.records[i].placement);
                  }));
    }
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.placementRounds, b.placementRounds);
    EXPECT_EQ(a.avgGpuUtilization, b.avgGpuUtilization);
    EXPECT_EQ(a.jobRestarts, b.jobRestarts);
    EXPECT_EQ(a.avgFragmentation, b.avgFragmentation);
}

std::vector<std::string>
fileLines(const std::string &path)
{
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path, const std::vector<std::string> &lines)
{
    std::ofstream os(path, std::ios::trunc);
    for (const auto &line : lines)
        os << line << "\n";
}

// --- serialization round-trips -----------------------------------------

TEST(JournalSerialize, DomainTypesRoundTripByteExact)
{
    const JobTrace trace = smallTrace();
    for (const JobSpec &spec : trace.jobs()) {
        const std::string first = jsonOf(
            [&](obs::JsonWriter &json) { writeJobSpec(json, spec); });
        const JobSpec back = readJobSpec(obs::parseJson(first));
        const std::string second = jsonOf(
            [&](obs::JsonWriter &json) { writeJobSpec(json, back); });
        EXPECT_EQ(first, second);
    }

    Placement placement;
    placement.workers[ServerId(3)] = 2;
    placement.workers[ServerId(5)] = 1;
    placement.psServer = ServerId(5);
    placement.extraPsServers.push_back(ServerId(3));
    placement.inaRacks.insert(RackId(0));
    const std::string first = jsonOf(
        [&](obs::JsonWriter &json) { writePlacement(json, placement); });
    const Placement back = readPlacement(obs::parseJson(first));
    EXPECT_EQ(first, jsonOf([&](obs::JsonWriter &json) {
                  writePlacement(json, back);
              }));

    const ExperimentConfig config = smallConfig();
    const std::string cfg = jsonOf([&](obs::JsonWriter &json) {
        writeExperimentConfig(json, config);
    });
    const ExperimentConfig cfgBack = readExperimentConfig(obs::parseJson(cfg));
    EXPECT_EQ(cfg, jsonOf([&](obs::JsonWriter &json) {
                  writeExperimentConfig(json, cfgBack);
              }));
}

TEST(JournalSerialize, MetricsRoundTripIncludingNonFinite)
{
    const RunMetrics metrics =
        runExperiment(smallConfig(), smallTrace(11, 12));
    const std::string first = jsonOf(
        [&](obs::JsonWriter &json) { writeRunMetrics(json, metrics); });
    const RunMetrics back = readRunMetrics(obs::parseJson(first));
    expectMetricsIdentical(metrics, back);
    EXPECT_EQ(metrics.placementSeconds, back.placementSeconds);

    // Non-finite doubles travel as strings and round-trip exactly.
    const std::string inf = jsonOf([&](obs::JsonWriter &json) {
        json.beginObject();
        json.kv("x", std::numeric_limits<double>::infinity());
        json.endObject();
    });
    const obs::JsonValue tree = obs::parseJson(inf);
    EXPECT_EQ(readDouble(tree.at("x")),
              std::numeric_limits<double>::infinity());
}

// --- record → read back ------------------------------------------------

TEST(JournalRecord, WriterProducesReadableJournal)
{
    const std::string path = tempPath("journal_roundtrip.jsonl");
    const ExperimentConfig config = smallConfig();
    const JobTrace trace = smallTrace();

    RecordOptions options;
    options.path = path;
    options.label = "roundtrip";
    const RecordOutcome outcome = recordRun(config, trace, options);
    EXPECT_FALSE(outcome.reused);
    EXPECT_FALSE(outcome.resumed);
    EXPECT_GT(outcome.eventsWritten, trace.jobs().size());

    JournalReader reader(path);
    EXPECT_EQ(reader.header().label, "roundtrip");
    EXPECT_EQ(reader.header().trace.size(), trace.jobs().size());
    EXPECT_EQ(reader.header().config.placer, config.placer);

    const std::vector<JournalEvent> events = reader.readAll();
    ASSERT_EQ(events.size(), outcome.eventsWritten);
    EXPECT_EQ(reader.unknownKindsSkipped(), 0u);
    EXPECT_EQ(events.front().kind, EventKind::Arrival);
    EXPECT_EQ(events.back().kind, EventKind::RunEnd);
    ASSERT_NE(events.back().metrics, nullptr);
    expectMetricsIdentical(*events.back().metrics, outcome.metrics);

    // Every lifecycle kind shows up in a contended run.
    std::size_t placements = 0, starts = 0, finishes = 0;
    for (const auto &event : events) {
        placements += event.kind == EventKind::Placement;
        starts += event.kind == EventKind::JobStart;
        finishes += event.kind == EventKind::JobFinish;
    }
    EXPECT_GT(placements, 0u);
    EXPECT_EQ(starts, trace.jobs().size());
    EXPECT_EQ(finishes, trace.jobs().size());
}

// --- verify: the zero-divergence acceptance criterion ------------------

TEST(JournalReplay, VerifyReportsZeroDivergences)
{
    const std::string path = tempPath("journal_verify.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 40.0;
    const RecordOutcome outcome =
        recordRun(smallConfig(), smallTrace(), options);

    Replayer replayer(path);
    EXPECT_TRUE(replayer.complete());
    const VerifyResult result = replayer.verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");
    EXPECT_FALSE(result.divergence.has_value());
    EXPECT_GT(result.eventsCompared, 0u);
    expectMetricsIdentical(result.metrics, outcome.metrics);
}

TEST(JournalReplay, VerifyCoversFailuresAndStochasticPlacers)
{
    // Server failures (restart paths) and the Random placer (RNG state
    // in the snapshot) are the hardest determinism cases.
    ExperimentConfig config = smallConfig();
    config.placer = "Random";
    config.seed = 99;
    config.sim.failures = benchutil::poissonFailureSchedule(
        60.0, 300.0,
        config.cluster.numRacks * config.cluster.serversPerRack, 17);
    ASSERT_FALSE(config.sim.failures.empty());

    const std::string path = tempPath("journal_verify_failures.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 50.0;
    const RecordOutcome outcome =
        recordRun(config, smallTrace(3), options);
    EXPECT_GT(outcome.snapshotsWritten, 0u);

    Replayer replayer(path);
    const VerifyResult result = replayer.verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");

    bool sawFailure = false;
    for (const auto &event : replayer.events())
        sawFailure |= event.kind == EventKind::ServerFailure;
    EXPECT_TRUE(sawFailure);
}

TEST(JournalReplay, VerifyIsInvariantToMetricsRecording)
{
    // The bench harness records with the metrics registry enabled
    // (--json); replay runs with it off. Observation gauges must not
    // perturb the journaled PlacementContext::Stats, or this exact
    // pairing diverges.
    const std::string path = tempPath("journal_metrics_on.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 40.0;
    obs::setMetricsEnabled(true);
    const RecordOutcome outcome =
        recordRun(smallConfig(), smallTrace(), options);
    obs::setMetricsEnabled(false);

    const VerifyResult result = Replayer(path).verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");
    expectMetricsIdentical(result.metrics, outcome.metrics);
}

TEST(JournalReplay, VerifyFlagsATamperedJournal)
{
    const std::string path = tempPath("journal_tampered.jsonl");
    RecordOptions options;
    options.path = path;
    recordRun(smallConfig(), smallTrace(), options);

    // Flip one recorded arrival time and expect verify to name it.
    std::vector<std::string> lines = fileLines(path);
    bool tampered = false;
    for (auto &line : lines) {
        const auto pos = line.find("\"kind\":\"arrival\"");
        if (pos == std::string::npos)
            continue;
        const auto tpos = line.find("\"t\":");
        ASSERT_NE(tpos, std::string::npos);
        line = line.substr(0, tpos) + "\"t\":123456.5," +
               line.substr(line.find(',', tpos) + 1);
        tampered = true;
        break;
    }
    ASSERT_TRUE(tampered);
    writeLines(path, lines);

    const VerifyResult result = Replayer(path).verify();
    EXPECT_FALSE(result.ok);
    ASSERT_TRUE(result.divergence.has_value());
    EXPECT_EQ(result.divergence->kind, EventKind::Arrival);
    EXPECT_EQ(result.divergence->field, "t");
    EXPECT_NE(result.divergence->describe().find("arrival"),
              std::string::npos);
}

// --- snapshot / resume bit-identity ------------------------------------

TEST(JournalReplay, ResumeFromSnapshotIsBitIdentical)
{
    const ExperimentConfig config = smallConfig();
    const JobTrace trace = smallTrace();
    const RunMetrics uninterrupted = runExperiment(config, trace);

    const std::string path = tempPath("journal_resume.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 30.0;
    const RecordOutcome outcome = recordRun(config, trace, options);
    EXPECT_GT(outcome.snapshotsWritten, 1u);
    expectMetricsIdentical(outcome.metrics, uninterrupted);

    // Restoring the latest snapshot and running the remainder lands on
    // exactly the same final state as never having stopped.
    Replayer replayer(path);
    ASSERT_TRUE(replayer.hasSnapshot());
    const RunMetrics resumed = replayer.resume();
    expectMetricsIdentical(resumed, uninterrupted);
}

TEST(JournalRecord, ResumePicksUpATruncatedJournal)
{
    const ExperimentConfig config = smallConfig();
    const JobTrace trace = smallTrace();
    const RunMetrics uninterrupted = runExperiment(config, trace);

    const std::string path = tempPath("journal_truncated.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 30.0;
    recordRun(config, trace, options);

    // Simulate a crash: keep the header, everything up to the first
    // snapshot plus a couple of events, and one torn half-line.
    Replayer loaded(path);
    ASSERT_TRUE(loaded.hasSnapshot());
    std::size_t firstSnapshot = 0;
    while (loaded.events()[firstSnapshot].kind != EventKind::Snapshot)
        ++firstSnapshot;
    const std::size_t keepEvents = firstSnapshot + 3;
    ASSERT_LT(keepEvents, loaded.events().size());
    std::vector<std::string> lines = fileLines(path);
    lines.resize(1 + keepEvents);
    lines.push_back("{\"kind\":\"job_fin"); // torn mid-write
    writeLines(path, lines);

    options.resume = true;
    const RecordOutcome outcome = recordRun(config, trace, options);
    EXPECT_TRUE(outcome.resumed);
    EXPECT_FALSE(outcome.reused);
    expectMetricsIdentical(outcome.metrics, uninterrupted);

    // The rewritten journal is whole again: it verifies end to end.
    const VerifyResult result = Replayer(path).verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");
}

TEST(JournalRecord, ResumeReusesACompleteJournal)
{
    const std::string path = tempPath("journal_reuse.jsonl");
    RecordOptions options;
    options.path = path;
    options.snapshotEvery = 50.0;
    const RecordOutcome first =
        recordRun(smallConfig(), smallTrace(), options);

    options.resume = true;
    const RecordOutcome second =
        recordRun(smallConfig(), smallTrace(), options);
    EXPECT_TRUE(second.reused);
    EXPECT_FALSE(second.resumed);
    EXPECT_EQ(second.eventsWritten, first.eventsWritten);
    expectMetricsIdentical(second.metrics, first.metrics);
}

TEST(JournalRecord, ResumeRerecordsOnConfigMismatch)
{
    const std::string path = tempPath("journal_mismatch.jsonl");
    RecordOptions options;
    options.path = path;
    recordRun(smallConfig(), smallTrace(), options);

    ExperimentConfig other = smallConfig();
    other.placer = "GB";
    options.resume = true;
    const RecordOutcome outcome = recordRun(other, smallTrace(), options);
    EXPECT_FALSE(outcome.reused);
    EXPECT_FALSE(outcome.resumed);
    EXPECT_EQ(JournalReader(path).header().config.placer, "GB");
}

// --- reader strictness and the tolerant-read contract ------------------

TEST(JournalReader, UnknownKindsAreSkippedAndCounted)
{
    const std::string path = tempPath("journal_unknown.jsonl");
    RecordOptions options;
    options.path = path;
    const RecordOutcome outcome =
        recordRun(smallConfig(), smallTrace(5, 8), options);

    std::vector<std::string> lines = fileLines(path);
    lines.insert(lines.begin() + 1,
                 "{\"kind\":\"future_extension\",\"t\":0.5,\"blob\":[1,2]}");
    lines.insert(lines.begin() + 4, "{\"kind\":\"other_new_thing\"}");
    writeLines(path, lines);

    JournalReader reader(path);
    const std::vector<JournalEvent> events = reader.readAll();
    EXPECT_EQ(events.size(), outcome.eventsWritten);
    EXPECT_EQ(reader.unknownKindsSkipped(), 2u);
}

TEST(JournalReader, MalformedLinesAreConfigErrorsWithLineNumbers)
{
    const std::string path = tempPath("journal_malformed.jsonl");
    RecordOptions options;
    options.path = path;
    recordRun(smallConfig(), smallTrace(5, 8), options);

    std::vector<std::string> lines = fileLines(path);
    lines[2] = "{\"kind\":\"arrival\",\"t\":"; // truncated JSON
    writeLines(path, lines);

    JournalReader reader(path);
    JournalEvent event;
    ASSERT_TRUE(reader.next(event)); // line 2 parses
    try {
        reader.next(event);
        FAIL() << "malformed line should throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos)
            << e.what();
    }
}

TEST(JournalReader, RejectsWrongSchemaAndMissingFile)
{
    const std::string path = tempPath("journal_badheader.jsonl");
    writeLines(path, {"{\"schema\":\"netpack.journal/999\","
                      "\"kind\":\"header\"}"});
    EXPECT_THROW(JournalReader{path}, ConfigError);
    EXPECT_THROW(JournalReader{tempPath("journal_nonexistent.jsonl")},
                 ConfigError);
}

// --- what-if ------------------------------------------------------------

TEST(JournalReplay, WhatIfSwapsThePlacerMidRun)
{
    const std::string path = tempPath("journal_whatif.jsonl");
    RecordOptions options;
    options.path = path;
    const RecordOutcome outcome =
        recordRun(smallConfig(), smallTrace(), options);

    Replayer replayer(path);
    const WhatIfResult result = replayer.whatIf("GB", 3);
    EXPECT_EQ(result.placer, "GB");
    EXPECT_GE(result.swapRound, 3);
    expectMetricsIdentical(result.recorded, outcome.metrics);
    EXPECT_EQ(result.whatIf.records.size(), outcome.metrics.records.size());
    EXPECT_GT(result.whatIf.makespan, 0.0);

    // Swapping at round 0 re-runs the whole trace under the other
    // placer; swapping past the end reproduces the recorded run.
    const WhatIfResult never =
        replayer.whatIf("NetPack", outcome.metrics.placementRounds + 1);
    expectMetricsIdentical(never.whatIf, outcome.metrics);
}

// --- misc guards --------------------------------------------------------

TEST(JournalSnapshot, PacketFidelityCannotSnapshot)
{
    ExperimentConfig config;
    config.cluster = benchutil::testbedCluster();
    config.fidelity = Fidelity::Packet;
    const JobTrace trace =
        benchutil::testbedTrace(DemandDistribution::Poisson, 4, 13);

    ClusterTopology topo(config.cluster);
    ClusterSimulator sim(topo, makeNetworkModel(config, topo),
                         makePlacerByName(config.placer, config.seed),
                         config.sim);
    sim.begin(trace);
    EXPECT_THROW(sim.captureSnapshot(), ConfigError);

    // recordRun still journals events under packet fidelity — it just
    // cannot take snapshots.
    RecordOptions options;
    options.path = tempPath("journal_packet.jsonl");
    options.snapshotEvery = 10.0;
    const RecordOutcome outcome = recordRun(config, trace, options);
    EXPECT_EQ(outcome.snapshotsWritten, 0u);
    EXPECT_GT(outcome.eventsWritten, 0u);
    EXPECT_FALSE(Replayer(options.path).hasSnapshot());
}

TEST(JournalHelpers, PoissonFailureScheduleIsDeterministic)
{
    const auto a = benchutil::poissonFailureSchedule(30.0, 600.0, 64, 17);
    const auto b = benchutil::poissonFailureSchedule(30.0, 600.0, 64, 17);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    Seconds last = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].server, b[i].server);
        EXPECT_GT(a[i].time, last);
        EXPECT_LE(a[i].time, 600.0);
        EXPECT_GE(a[i].server.value, 0);
        EXPECT_LT(a[i].server.value, 64);
        EXPECT_EQ(a[i].downtime, 60.0);
        last = a[i].time;
    }
    EXPECT_TRUE(
        benchutil::poissonFailureSchedule(0.0, 600.0, 64, 17).empty());
    EXPECT_NE(benchutil::poissonFailureSchedule(30.0, 600.0, 64, 18)
                  .front()
                  .time,
              a.front().time);
}

TEST(JournalHelpers, SanitizeLabelAndEnsureDirectory)
{
    EXPECT_EQ(sanitizeLabel("96|NetPack|seed0"), "96_NetPack_seed0");
    EXPECT_EQ(sanitizeLabel(""), "run");
    const std::string dir = tempPath("journal_dirs/a/b");
    ensureDirectory(dir);
    std::ofstream probe(dir + "/probe.txt");
    EXPECT_TRUE(probe.good());
}

} // namespace
} // namespace journal
} // namespace netpack
