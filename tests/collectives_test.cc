/**
 * @file
 * Tests for the AllReduce collective cost model (Section 2.1's
 * alternatives): volumes, bottlenecks, round counts, and the ordering
 * that motivates INA.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "ina/collectives.h"

namespace netpack {
namespace {

TEST(Collectives, SingleWorkerCostsNothing)
{
    for (auto algorithm : {CollectiveAlgorithm::PsDirect,
                           CollectiveAlgorithm::PsWithIna,
                           CollectiveAlgorithm::RingAllReduce,
                           CollectiveAlgorithm::HalvingDoubling}) {
        const CollectiveCost cost = collectiveCost(algorithm, 1, 500.0);
        EXPECT_DOUBLE_EQ(cost.perWorkerEgress, 0.0);
        EXPECT_DOUBLE_EQ(cost.bottleneckVolume, 0.0);
    }
}

TEST(Collectives, PsDirectBottleneckScalesWithWorkers)
{
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::PsDirect, 8, 100.0);
    EXPECT_DOUBLE_EQ(cost.perWorkerEgress, 100.0);
    EXPECT_DOUBLE_EQ(cost.bottleneckVolume, 800.0);
}

TEST(Collectives, FullInaCollapsesThePsBottleneck)
{
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::PsWithIna, 8, 100.0, 1.0);
    EXPECT_DOUBLE_EQ(cost.bottleneckVolume, 100.0);
}

TEST(Collectives, ZeroRatioInaEqualsPsDirect)
{
    const CollectiveCost ina =
        collectiveCost(CollectiveAlgorithm::PsWithIna, 8, 100.0, 0.0);
    const CollectiveCost ps =
        collectiveCost(CollectiveAlgorithm::PsDirect, 8, 100.0);
    EXPECT_DOUBLE_EQ(ina.bottleneckVolume, ps.bottleneckVolume);
}

TEST(Collectives, RingVolumeIsTwoTimesNMinusOneOverN)
{
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::RingAllReduce, 4, 100.0);
    EXPECT_NEAR(cost.perWorkerEgress, 150.0, 1e-12); // 2*3/4*100
    EXPECT_EQ(cost.rounds, 6);                       // 2*(n-1)
}

TEST(Collectives, HalvingDoublingHasLogRounds)
{
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::HalvingDoubling, 8, 100.0);
    EXPECT_EQ(cost.rounds, 6); // 2*log2(8)
    EXPECT_NEAR(cost.perWorkerEgress, 175.0, 1e-12);
}

TEST(Collectives, InaBeatsRingBeatsPsAtScale)
{
    // The motivation ordering: for n >= 3, INA's bottleneck (d) <
    // ring's (~2d) < direct PS's (n*d).
    for (int n : {3, 8, 32}) {
        const double ina =
            collectiveCost(CollectiveAlgorithm::PsWithIna, n, 100.0, 1.0)
                .bottleneckVolume;
        const double ring =
            collectiveCost(CollectiveAlgorithm::RingAllReduce, n, 100.0)
                .bottleneckVolume;
        const double ps =
            collectiveCost(CollectiveAlgorithm::PsDirect, n, 100.0)
                .bottleneckVolume;
        EXPECT_LT(ina, ring) << "n=" << n;
        EXPECT_LT(ring, ps) << "n=" << n;
    }
}

TEST(Collectives, CommTimeIncludesRoundLatency)
{
    const CollectiveCost ring =
        collectiveCost(CollectiveAlgorithm::RingAllReduce, 4, 100.0);
    const Seconds no_latency = ring.commTime(10.0);
    const Seconds with_latency = ring.commTime(10.0, 1e-3);
    EXPECT_NEAR(with_latency - no_latency, 6e-3, 1e-12);
}

TEST(Collectives, LatencyMakesHalvingDoublingWinSmallMessages)
{
    // Tiny gradients: fewer rounds beat less volume.
    const double rate = 100.0;
    const Seconds latency = 50e-6;
    const Seconds ring =
        collectiveCost(CollectiveAlgorithm::RingAllReduce, 32, 0.1)
            .commTime(rate, latency);
    const Seconds hd =
        collectiveCost(CollectiveAlgorithm::HalvingDoubling, 32, 0.1)
            .commTime(rate, latency);
    EXPECT_LT(hd, ring);
}

TEST(Collectives, InvalidInputsRejected)
{
    EXPECT_THROW(collectiveCost(CollectiveAlgorithm::PsDirect, 0, 1.0),
                 ConfigError);
    EXPECT_THROW(collectiveCost(CollectiveAlgorithm::PsDirect, 2, -1.0),
                 ConfigError);
    EXPECT_THROW(
        collectiveCost(CollectiveAlgorithm::PsWithIna, 2, 1.0, 1.5),
        ConfigError);
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::PsDirect, 2, 1.0);
    EXPECT_THROW(cost.commTime(0.0), ConfigError);
}

TEST(Collectives, ZeroGradientCostsNothing)
{
    for (auto algorithm : {CollectiveAlgorithm::PsDirect,
                           CollectiveAlgorithm::PsWithIna,
                           CollectiveAlgorithm::RingAllReduce,
                           CollectiveAlgorithm::HalvingDoubling}) {
        const CollectiveCost cost = collectiveCost(algorithm, 8, 0.0);
        EXPECT_DOUBLE_EQ(cost.perWorkerEgress, 0.0);
        EXPECT_DOUBLE_EQ(cost.bottleneckVolume, 0.0);
        // Zero volume costs zero time even with round latency: the
        // degenerate cost carries rounds = 0, not the algorithm's.
        EXPECT_EQ(cost.rounds, 0);
        EXPECT_DOUBLE_EQ(cost.commTime(10.0, 1e-3), 0.0);
    }
}

TEST(Collectives, HalvingDoublingNonPowerOfTwoRoundsUp)
{
    // ceil(log2 n) rounds each way: n in (2^k, 2^(k+1)] pays k+1.
    EXPECT_EQ(collectiveCost(CollectiveAlgorithm::HalvingDoubling, 5,
                             100.0)
                  .rounds,
              6); // ceil(log2 5) = 3
    EXPECT_EQ(collectiveCost(CollectiveAlgorithm::HalvingDoubling, 7,
                             100.0)
                  .rounds,
              6);
    EXPECT_EQ(collectiveCost(CollectiveAlgorithm::HalvingDoubling, 9,
                             100.0)
                  .rounds,
              8); // ceil(log2 9) = 4
    // Volume stays the ring volume regardless of the round count.
    const CollectiveCost cost =
        collectiveCost(CollectiveAlgorithm::HalvingDoubling, 5, 100.0);
    EXPECT_NEAR(cost.perWorkerEgress, 160.0, 1e-12); // 2*4/5*100
}

TEST(Collectives, StepTimeMatchesCostComposition)
{
    // collectiveStepTime is the fused form the backends and
    // bench_ext_collectives share; it must equal composing the parts.
    for (auto algorithm : {CollectiveAlgorithm::PsDirect,
                           CollectiveAlgorithm::PsWithIna,
                           CollectiveAlgorithm::RingAllReduce,
                           CollectiveAlgorithm::HalvingDoubling}) {
        const Seconds fused =
            collectiveStepTime(algorithm, 6, 250.0, 40.0, 1e-4, 0.8);
        const Seconds composed =
            collectiveCost(algorithm, 6, 250.0, 0.8).commTime(40.0, 1e-4);
        EXPECT_DOUBLE_EQ(fused, composed) << collectiveName(algorithm);
    }
}

TEST(Collectives, StepTimeSingleWorkerIsFree)
{
    EXPECT_DOUBLE_EQ(collectiveStepTime(
                         CollectiveAlgorithm::RingAllReduce, 1, 500.0,
                         10.0, 1e-3),
                     0.0);
}

TEST(Collectives, NamesAreStable)
{
    EXPECT_STREQ(collectiveName(CollectiveAlgorithm::PsDirect), "PS");
    EXPECT_STREQ(collectiveName(CollectiveAlgorithm::PsWithIna),
                 "PS+INA");
    EXPECT_STREQ(collectiveName(CollectiveAlgorithm::RingAllReduce),
                 "Ring");
    EXPECT_STREQ(collectiveName(CollectiveAlgorithm::HalvingDoubling),
                 "HalvDoub");
}

} // namespace
} // namespace netpack
