/**
 * @file
 * PlacementContext transaction tests: randomized interleavings of
 * begin/mutate/query/rollback/commit must leave the context
 * field-identical — bitwise, cached water-filling fixed point included
 * — to a context that only ever saw the surviving (committed)
 * operations. Also pins the rollback cost contract: undoing a frame
 * never runs the estimator (no full re-solve, no incremental pass), it
 * only replays the undo log.
 *
 * Run with NETPACK_VERIFY_INCREMENTAL=1 to additionally cross-check
 * every incremental re-estimation these interleavings trigger against a
 * cold full estimate.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/placement_context.h"
#include "obs/metrics.h"

namespace netpack {
namespace {

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void
expectSameSteady(const SteadyState &a, const SteadyState &b,
                 const std::string &what)
{
    ASSERT_EQ(a.jobRate.size(), b.jobRate.size()) << what;
    for (const auto &[id, rate] : a.jobRate) {
        const auto it = b.jobRate.find(id);
        ASSERT_TRUE(it != b.jobRate.end())
            << what << " job " << id.value;
        EXPECT_TRUE(sameBits(rate, it->second))
            << what << " job " << id.value << ": " << rate
            << " != " << it->second;
    }
    ASSERT_EQ(a.linkResidual.size(), b.linkResidual.size()) << what;
    for (std::size_t i = 0; i < a.linkResidual.size(); ++i)
        EXPECT_TRUE(sameBits(a.linkResidual[i], b.linkResidual[i]))
            << what << " link " << i;
    ASSERT_EQ(a.patResidual.size(), b.patResidual.size()) << what;
    for (std::size_t i = 0; i < a.patResidual.size(); ++i)
        EXPECT_TRUE(sameBits(a.patResidual[i], b.patResidual[i]))
            << what << " rack " << i;
    EXPECT_EQ(a.linkFlows, b.linkFlows) << what;
}

void
expectSameState(const PlacementContext::State &a,
                const PlacementContext::State &b, const std::string &what)
{
    ASSERT_EQ(a.running.size(), b.running.size()) << what;
    for (std::size_t i = 0; i < a.running.size(); ++i) {
        EXPECT_EQ(a.running[i].id, b.running[i].id) << what;
        EXPECT_EQ(a.running[i].placement.workers,
                  b.running[i].placement.workers)
            << what;
        EXPECT_EQ(a.running[i].placement.psServer,
                  b.running[i].placement.psServer)
            << what;
        EXPECT_EQ(a.running[i].placement.extraPsServers,
                  b.running[i].placement.extraPsServers)
            << what;
        EXPECT_EQ(a.running[i].placement.inaRacks,
                  b.running[i].placement.inaRacks)
            << what;
    }
    expectSameSteady(a.cached, b.cached, what);
    EXPECT_EQ(a.valid, b.valid) << what;
    EXPECT_EQ(a.structural, b.structural) << what;
    EXPECT_EQ(a.dirtyLinks, b.dirtyLinks) << what;
    EXPECT_EQ(a.dirtyRacks, b.dirtyRacks) << what;
    EXPECT_EQ(a.stats.fullEstimates, b.stats.fullEstimates) << what;
    EXPECT_EQ(a.stats.incrementalEstimates, b.stats.incrementalEstimates)
        << what;
    EXPECT_EQ(a.stats.cacheHits, b.stats.cacheHits) << what;
    EXPECT_EQ(a.stats.jobsReconverged, b.stats.jobsReconverged) << what;
    EXPECT_EQ(a.stats.viewRebuilds, b.stats.viewRebuilds) << what;
    EXPECT_EQ(a.stats.viewReuses, b.stats.viewReuses) << what;
}

ClusterTopology
smallCluster(Rng &rng)
{
    ClusterConfig cluster;
    cluster.numRacks = static_cast<int>(rng.uniformInt(2, 5));
    cluster.serversPerRack = static_cast<int>(rng.uniformInt(2, 5));
    cluster.gpusPerServer = static_cast<int>(rng.uniformInt(2, 4));
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = rng.uniformInt(0, 1) ? 400.0 : 1000.0;
    cluster.oversubscription = rng.uniformInt(0, 2) == 0 ? 4.0 : 1.0;
    return ClusterTopology(cluster);
}

Placement
randomPlacement(Rng &rng, const ClusterTopology &topo)
{
    Placement placement;
    const int n_servers = topo.numServers();
    const int spread = static_cast<int>(
        rng.uniformInt(1, std::min(4, n_servers)));
    for (int k = 0; k < spread; ++k) {
        const ServerId server(static_cast<int>(
            rng.uniformInt(0, n_servers - 1)));
        const int count =
            static_cast<int>(rng.uniformInt(1, topo.gpusPerServer()));
        placement.workers[server] = count;
    }
    placement.psServer = ServerId(
        static_cast<int>(rng.uniformInt(0, n_servers - 1)));
    if (!placement.singleServer())
        placement.inaRacks = placement.allRacks(topo);
    return placement;
}

/** An operation appliable to any context (for commit replay). */
using Op = std::function<void(PlacementContext &)>;

/**
 * Random operation against @p live, also returned as a replayable
 * closure. @p alive tracks the ids live currently holds.
 */
Op
randomOp(Rng &rng, const ClusterTopology &topo, PlacementContext &live,
         std::vector<JobId> &alive, int &next_id)
{
    const auto kind = rng.uniformInt(0, 9);
    if (kind <= 3 || alive.empty()) { // add
        JobId id(next_id++);
        Placement placement = randomPlacement(rng, topo);
        alive.push_back(id);
        Op op = [id, placement](PlacementContext &ctx) {
            ctx.addJob(id, placement);
        };
        op(live);
        return op;
    }
    if (kind <= 5) { // remove
        const auto victim = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(alive.size()) - 1));
        const JobId id = alive[victim];
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(victim));
        Op op = [id](PlacementContext &ctx) { ctx.removeJob(id); };
        op(live);
        return op;
    }
    if (kind == 6) { // shrink the INA rack set of a multi-server job
        const auto pick = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(alive.size()) - 1));
        const JobId id = alive[pick];
        const Placement *placement = live.placementOf(id);
        std::set<RackId> racks = placement->inaRacks;
        if (!racks.empty())
            racks.erase(racks.begin());
        Op op = [id, racks](PlacementContext &ctx) {
            ctx.updateInaRacks(id, racks);
        };
        op(live);
        return op;
    }
    if (kind <= 8) { // steady-state query (re-converges, fills cache)
        Op op = [](PlacementContext &ctx) { (void)ctx.steadyState(); };
        op(live);
        return op;
    }
    // flat snapshot query
    Op op = [](PlacementContext &ctx) { (void)ctx.steadyStateView(); };
    op(live);
    return op;
}

/**
 * Run one random frame at @p depth against @p live: a mix of ops,
 * nested frames, and a final commit-or-rollback. Returns the surviving
 * ops (empty when rolled back). On rollback the post-rollback export
 * must equal the frame-entry export bitwise.
 */
std::vector<Op>
runFrame(Rng &rng, const ClusterTopology &topo, PlacementContext &live,
         std::vector<JobId> &alive, int &next_id, int depth,
         const std::string &what)
{
    const PlacementContext::State entry = live.exportState();
    const std::vector<JobId> alive_entry = alive;

    live.beginTxn();
    std::vector<Op> ops;
    const int steps = static_cast<int>(rng.uniformInt(1, 6));
    for (int step = 0; step < steps; ++step) {
        if (depth < 2 && rng.uniformInt(0, 3) == 0) {
            std::vector<Op> nested =
                runFrame(rng, topo, live, alive, next_id, depth + 1,
                         what + " nested");
            ops.insert(ops.end(),
                       std::make_move_iterator(nested.begin()),
                       std::make_move_iterator(nested.end()));
        } else {
            ops.push_back(randomOp(rng, topo, live, alive, next_id));
        }
    }

    if (rng.uniformInt(0, 1) == 0) {
        live.commitTxn();
        return ops;
    }
    live.rollbackTxn();
    expectSameState(live.exportState(), entry, what + " rollback");
    alive = alive_entry;
    return {};
}

class TxnInterleavingTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TxnInterleavingTest, RollbackRestoresBitIdenticalState)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    const ClusterTopology topo = smallCluster(rng);

    // `live` sees every operation, transactional or not; `control` only
    // ever sees the survivors, replayed in order, and is the
    // never-touched-by-rolled-back-work oracle.
    PlacementContext live(topo), control(topo);
    std::vector<JobId> alive;
    int next_id = 1;

    const int rounds = static_cast<int>(rng.uniformInt(4, 10));
    for (int round = 0; round < rounds; ++round) {
        const std::string what = "scenario " +
                                 std::to_string(GetParam()) + " round " +
                                 std::to_string(round);
        std::vector<Op> survivors;
        if (rng.uniformInt(0, 3) == 0) {
            // Plain committed operation outside any frame.
            survivors.push_back(
                randomOp(rng, topo, live, alive, next_id));
        } else {
            survivors = runFrame(rng, topo, live, alive, next_id, 0,
                                 what);
        }
        ASSERT_EQ(live.txnDepth(), 0) << what;
        for (const Op &op : survivors)
            op(control);
        expectSameState(live.exportState(), control.exportState(), what);
        if (::testing::Test::HasFailure())
            return;
    }
    EXPECT_GE(live.txnStats().begins,
              live.txnStats().commits + live.txnStats().rollbacks);
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, TxnInterleavingTest,
                         ::testing::Range(0, 60));

// ------------------------------------------------------ cost contract

/** Registry deltas around a rollback: the undo replay must not touch
 * the estimator at all — no full re-solve, no incremental pass. */
TEST(TxnCost, RollbackNeverRunsTheEstimator)
{
    const bool metrics_were_on = obs::metricsEnabled();
    obs::setMetricsEnabled(true);
    ClusterConfig cluster;
    cluster.numRacks = 8;
    cluster.serversPerRack = 8;
    cluster.gpusPerServer = 4;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 1000.0;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);

    // A converged background of jobs in the first two racks.
    Rng rng(41);
    int next_id = 1;
    for (int j = 0; j < 6; ++j) {
        Placement placement;
        const int base = (j % 2) * cluster.serversPerRack;
        placement.workers[ServerId(base + j / 2)] = 2;
        placement.workers[ServerId(base + j / 2 + 1)] = 2;
        placement.psServer = ServerId(base + j / 2);
        placement.inaRacks = placement.allRacks(topo);
        ctx.addJob(JobId(next_id++), placement);
    }
    (void)ctx.steadyState();
    const auto before_stats = ctx.stats();

    // Transactional probe: one extra job far away, re-converged
    // incrementally, then rolled back.
    ctx.beginTxn();
    Placement probe;
    const int far = 6 * cluster.serversPerRack;
    probe.workers[ServerId(far)] = 2;
    probe.workers[ServerId(far + 1)] = 2;
    probe.psServer = ServerId(far);
    probe.inaRacks = probe.allRacks(topo);
    ctx.addJob(JobId(next_id++), probe);
    (void)ctx.steadyState();
    EXPECT_EQ(ctx.stats().fullEstimates, before_stats.fullEstimates)
        << "the probe must re-converge incrementally";
    EXPECT_EQ(ctx.stats().incrementalEstimates,
              before_stats.incrementalEstimates + 1);

    const auto counters_before =
        obs::Registry::instance().snapshot().counters;
    const auto counter = [&](const char *name) {
        const auto it = counters_before.find(name);
        return it == counters_before.end() ? std::int64_t{0}
                                           : it->second;
    };
    const std::int64_t incremental_before =
        counter("waterfill.incremental_hits");
    const std::int64_t full_before = counter("waterfill.full_fallbacks");
    const std::int64_t rollbacks_before =
        counter("placement.txn_rollbacks");

    ctx.rollbackTxn();

    const auto counters_after =
        obs::Registry::instance().snapshot().counters;
    const auto counter_after = [&](const char *name) {
        const auto it = counters_after.find(name);
        return it == counters_after.end() ? std::int64_t{0} : it->second;
    };
    EXPECT_EQ(counter_after("waterfill.incremental_hits"),
              incremental_before)
        << "rollback ran an incremental estimate";
    EXPECT_EQ(counter_after("waterfill.full_fallbacks"), full_before)
        << "rollback ran a full water-filling re-solve";
    EXPECT_EQ(counter_after("placement.txn_rollbacks"),
              rollbacks_before + 1);

    // Stats restored to the pre-txn values; the next query is a pure
    // cache hit because the committed fixed point is intact.
    EXPECT_EQ(ctx.stats().fullEstimates, before_stats.fullEstimates);
    EXPECT_EQ(ctx.stats().incrementalEstimates,
              before_stats.incrementalEstimates);
    (void)ctx.steadyState();
    EXPECT_EQ(ctx.stats().cacheHits, before_stats.cacheHits + 1);

    // The undo log was proportional to the touched component, not the
    // cluster: far fewer entries than links in the topology.
    EXPECT_GT(ctx.txnStats().entriesUndone, 0);
    EXPECT_LT(ctx.txnStats().entriesUndone, topo.numLinks());
    obs::setMetricsEnabled(metrics_were_on);
}

// --------------------------------------------------------- guardrails

TEST(TxnGuards, ClearAndImportRefuseInsideOpenFrame)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 2;
    cluster.gpusPerServer = 2;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);
    const PlacementContext::State snap = ctx.exportState();

    ctx.beginTxn();
    EXPECT_THROW(ctx.clear(), InternalError);
    EXPECT_THROW(ctx.importState(snap), InternalError);
    ctx.rollbackTxn();
    EXPECT_NO_THROW(ctx.clear());
    EXPECT_NO_THROW(ctx.importState(snap));
}

TEST(TxnGuards, CommitKeepsWorkAndCountsFrames)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 2;
    cluster.gpusPerServer = 2;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);

    const auto stats0 = ctx.txnStats();
    ctx.beginTxn();
    Placement placement;
    placement.workers[ServerId(0)] = 1;
    placement.workers[ServerId(1)] = 1;
    placement.psServer = ServerId(0);
    placement.inaRacks = placement.allRacks(topo);
    ctx.addJob(JobId(1), placement);
    ctx.commitTxn();
    EXPECT_NE(ctx.placementOf(JobId(1)), nullptr);
    EXPECT_EQ(ctx.txnStats().begins, stats0.begins + 1);
    EXPECT_EQ(ctx.txnStats().commits, stats0.commits + 1);
    EXPECT_EQ(ctx.txnStats().rollbacks, stats0.rollbacks);
    EXPECT_EQ(ctx.txnDepth(), 0);
}

/** Swap-removal restore: removing a non-tail running_ entry swaps the
 * tail in; the rollback must reverse that exactly. */
TEST(TxnGuards, RollbackRestoresSwapRemovedEntry)
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    const ClusterTopology topo(cluster);
    PlacementContext ctx(topo);

    for (int j = 0; j < 4; ++j) {
        Placement placement;
        placement.workers[ServerId(2 * j)] = 1;
        placement.workers[ServerId(2 * j + 1)] = 1;
        placement.psServer = ServerId(2 * j);
        placement.inaRacks = placement.allRacks(topo);
        ctx.addJob(JobId(j + 1), placement);
    }
    (void)ctx.steadyState();
    const PlacementContext::State before = ctx.exportState();

    ctx.beginTxn();
    ctx.removeJob(JobId(2)); // middle entry: tail swaps into its slot
    ctx.removeJob(JobId(1));
    (void)ctx.steadyState();
    ctx.rollbackTxn();
    expectSameState(ctx.exportState(), before, "swap-removal rollback");
}

} // namespace
} // namespace netpack
