/**
 * @file
 * Tests for the try/accept/rollback placement harness and the
 * meta-placers built on it: tryPlace/accept/unpackLast semantics
 * (context and GPU ledger restored exactly), the frame stack,
 * the NetPack+LS local search (never worse than plain NetPack,
 * deterministic), portfolio placement (bit-identical for any worker
 * count, winner applied verbatim), and the factory's structured
 * unknown-name error.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"
#include "core/placement_context.h"
#include "obs/metrics.h"
#include "placement/baselines.h"
#include "placement/local_search.h"
#include "placement/netpack_placer.h"
#include "placement/pack_harness.h"
#include "placement/portfolio.h"

namespace netpack {
namespace {

const char *const kModels[] = {"AlexNet", "VGG11", "VGG16", "ResNet50"};

ClusterTopology
testCluster(int racks = 4, int servers_per_rack = 4, int gpus = 4,
            double oversub = 1.0)
{
    ClusterConfig cluster;
    cluster.numRacks = racks;
    cluster.serversPerRack = servers_per_rack;
    cluster.gpusPerServer = gpus;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 1000.0;
    cluster.oversubscription = oversub;
    return ClusterTopology(cluster);
}

std::vector<JobSpec>
randomBatch(Rng &rng, int jobs, int max_demand, int first_id = 1)
{
    std::vector<JobSpec> batch;
    for (int j = 0; j < jobs; ++j) {
        JobSpec spec;
        spec.id = JobId(first_id + j);
        spec.modelName = kModels[rng.uniformInt(0, 3)];
        spec.gpuDemand =
            static_cast<int>(rng.uniformInt(2, max_demand));
        spec.iterations = 100;
        spec.value = rng.uniform(0.5, 5.0);
        batch.push_back(spec);
    }
    return batch;
}

void
expectSameBatchResult(const BatchResult &a, const BatchResult &b,
                      const std::string &what)
{
    ASSERT_EQ(a.placed.size(), b.placed.size()) << what;
    for (std::size_t i = 0; i < a.placed.size(); ++i) {
        EXPECT_EQ(a.placed[i].id, b.placed[i].id) << what;
        EXPECT_EQ(a.placed[i].placement.workers,
                  b.placed[i].placement.workers)
            << what;
        EXPECT_EQ(a.placed[i].placement.psServer,
                  b.placed[i].placement.psServer)
            << what;
        EXPECT_EQ(a.placed[i].placement.inaRacks,
                  b.placed[i].placement.inaRacks)
            << what;
    }
    EXPECT_EQ(a.deferred, b.deferred) << what;
}

std::vector<int>
freeGpuVector(const ClusterTopology &topo, const GpuLedger &gpus)
{
    std::vector<int> free;
    free.reserve(static_cast<std::size_t>(topo.numServers()));
    for (int s = 0; s < topo.numServers(); ++s)
        free.push_back(gpus.freeGpus(ServerId(s)));
    return free;
}

/**
 * Minimal harness strategy: first-fit greedy packing, no scoring. Also
 * re-exports the protected harness API so tests can drive frames
 * directly.
 */
class FirstFitPlacer : public PlacerHarness<FirstFitPlacer>
{
  public:
    std::string name() const override { return "FirstFit"; }

    using PlacerHarness<FirstFitPlacer>::tryPlace;
    using PackHarnessBase::accept;
    using PackHarnessBase::commitFrame;
    using PackHarnessBase::defer;
    using PackHarnessBase::openFrames;
    using PackHarnessBase::pushFrame;
    using PackHarnessBase::result;
    using PackHarnessBase::rollbackFrame;
    using PackHarnessBase::unpackLast;
    using PackHarnessBase::unplace;

    /** Bind a session without running a batch (for direct driving). */
    void begin(const ClusterTopology &topo, GpuLedger &gpus,
               PlacementContext &ctx)
    {
        beginSession(topo, gpus, ctx);
    }

    BatchResult seal() { return sealSession(); }

  private:
    friend class PlacerHarness<FirstFitPlacer>;

    void runBatch(const std::vector<JobSpec> &batch)
    {
        for (const JobSpec &spec : batch) {
            const PackResult attempt = tryPlace(spec);
            if (attempt.placed)
                accept(attempt);
            else
                defer(spec.id);
        }
    }

    bool packOne(const JobSpec &spec, PackResult &out)
    {
        int remaining = spec.gpuDemand;
        for (int s = 0; s < topo().numServers() && remaining > 0; ++s) {
            const ServerId server(s);
            const int take =
                std::min(remaining, gpus().freeGpus(server));
            if (take > 0) {
                out.job.placement.workers[server] = take;
                remaining -= take;
            }
        }
        if (remaining > 0)
            return false;
        out.job.placement.psServer =
            out.job.placement.workers.begin()->first;
        if (!out.job.placement.singleServer())
            out.job.placement.inaRacks =
                out.job.placement.allRacks(topo());
        placement_util::applyAllocation(gpus(), spec.id,
                                        out.job.placement);
        return true;
    }
};

// ------------------------------------------------------- harness core

TEST(PackHarness, UnpackLastRestoresLedgerAndContextExactly)
{
    const ClusterTopology topo = testCluster();
    GpuLedger gpus(topo);
    PlacementContext ctx(topo);
    FirstFitPlacer placer;
    Rng rng(3);
    const std::vector<JobSpec> batch = randomBatch(rng, 3, 8);

    placer.begin(topo, gpus, ctx);
    const PackResult first = placer.tryPlace(batch[0]);
    ASSERT_TRUE(first.placed);
    placer.accept(first);

    const std::vector<int> free_before = freeGpuVector(topo, gpus);
    const PlacementContext::State ctx_before = ctx.exportState();

    const PackResult second = placer.tryPlace(batch[1]);
    ASSERT_TRUE(second.placed);
    placer.accept(second);
    EXPECT_NE(ctx.placementOf(batch[1].id), nullptr);
    EXPECT_NE(freeGpuVector(topo, gpus), free_before);

    placer.unpackLast();
    EXPECT_EQ(ctx.placementOf(batch[1].id), nullptr);
    EXPECT_EQ(freeGpuVector(topo, gpus), free_before);
    const PlacementContext::State ctx_after = ctx.exportState();
    EXPECT_EQ(ctx_after.running.size(), ctx_before.running.size());
    EXPECT_EQ(ctx_after.valid, ctx_before.valid);

    const BatchResult result = placer.seal();
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].id, batch[0].id);
}

TEST(PackHarness, FailedAttemptLeavesNoTrace)
{
    const ClusterTopology topo = testCluster(2, 2, 2);
    GpuLedger gpus(topo);
    PlacementContext ctx(topo);
    FirstFitPlacer placer;

    JobSpec whale;
    whale.id = JobId(1);
    whale.modelName = "VGG16";
    whale.gpuDemand = 1000; // cannot fit
    whale.iterations = 100;
    whale.value = 1.0;

    const std::vector<int> free_before = freeGpuVector(topo, gpus);
    placer.begin(topo, gpus, ctx);
    const PackResult attempt = placer.tryPlace(whale);
    EXPECT_FALSE(attempt.placed);
    EXPECT_EQ(placer.openFrames(), 0u);
    EXPECT_EQ(freeGpuVector(topo, gpus), free_before);
    EXPECT_EQ(ctx.placementOf(whale.id), nullptr);
    placer.defer(whale.id);
    const BatchResult result = placer.seal();
    EXPECT_TRUE(result.placed.empty());
    ASSERT_EQ(result.deferred.size(), 1u);
}

TEST(PackHarness, FrameRollbackUndoesUnplaceAndReplace)
{
    const ClusterTopology topo = testCluster();
    GpuLedger gpus(topo);
    PlacementContext ctx(topo);
    FirstFitPlacer placer;
    Rng rng(17);
    const std::vector<JobSpec> batch = randomBatch(rng, 2, 10);

    BatchResult seeded =
        placer.placeBatch(batch, topo, gpus, ctx);
    ASSERT_EQ(seeded.placed.size(), 2u);
    const std::vector<int> free_before = freeGpuVector(topo, gpus);
    const Placement original = *ctx.placementOf(batch[0].id);

    // Speculative move of job 0, then discard it.
    placer.begin(topo, gpus, ctx);
    placer.pushFrame();
    placer.unplace(batch[0].id);
    EXPECT_EQ(ctx.placementOf(batch[0].id), nullptr);
    const PackResult retry = placer.tryPlace(batch[0]);
    ASSERT_TRUE(retry.placed);
    placer.rollbackFrame(); // the attempt
    placer.rollbackFrame(); // the move frame
    (void)placer.seal();

    EXPECT_EQ(freeGpuVector(topo, gpus), free_before);
    const Placement *restored = ctx.placementOf(batch[0].id);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->workers, original.workers);
    EXPECT_EQ(restored->psServer, original.psServer);
}

// ------------------------------------------------------ local search

TEST(LocalSearch, NeverWorseThanPlainNetPackAndDeterministic)
{
    const ClusterTopology topo = testCluster(4, 4, 4, 4.0);
    Rng rng(11);
    const std::vector<JobSpec> batch = randomBatch(rng, 8, 10);

    GpuLedger np_gpus(topo), ls_gpus(topo), ls2_gpus(topo);
    PlacementContext np_ctx(topo), ls_ctx(topo), ls2_ctx(topo);

    NetPackPlacer netpack;
    LocalSearchPlacer ls, ls2;
    const BatchResult np_result =
        netpack.placeBatch(batch, topo, np_gpus, np_ctx);
    const BatchResult ls_result =
        ls.placeBatch(batch, topo, ls_gpus, ls_ctx);
    const BatchResult ls2_result =
        ls2.placeBatch(batch, topo, ls2_gpus, ls2_ctx);

    // Same admission (the inner NetPack decides it), possibly better
    // placements: LS accepts only strict improvements, starting from
    // the NetPack solution.
    ASSERT_EQ(ls_result.placed.size(), np_result.placed.size());
    EXPECT_EQ(ls_result.deferred, np_result.deferred);
    const double np_time =
        placement_util::batchCommTime(batch, np_ctx);
    const double ls_time =
        placement_util::batchCommTime(batch, ls_ctx);
    EXPECT_LE(ls_time, np_time);

    expectSameBatchResult(ls_result, ls2_result, "LS determinism");

    // The ledger mirrors the final placements exactly.
    for (const PlacedJob &job : ls_result.placed) {
        int total = 0;
        for (const auto &[server, count] : job.placement.workers)
            total += count;
        const auto spec_it =
            std::find_if(batch.begin(), batch.end(),
                         [&](const JobSpec &s) { return s.id == job.id; });
        ASSERT_NE(spec_it, batch.end());
        EXPECT_EQ(total, spec_it->gpuDemand);
    }
}

TEST(LocalSearch, FactoryBuildsIt)
{
    const auto placer = makePlacerByName("NetPack+LS");
    EXPECT_EQ(placer->name(), "NetPack+LS");
}

// --------------------------------------------------------- portfolio

TEST(Portfolio, ParallelEvaluationIsBitIdenticalToSerial)
{
    const ClusterTopology topo = testCluster(4, 4, 4, 4.0);
    Rng rng(23);

    PortfolioConfig serial_cfg;
    serial_cfg.jobs = 1;
    PortfolioConfig parallel_cfg;
    parallel_cfg.jobs = 4;
    PortfolioPlacer serial(serial_cfg), parallel(parallel_cfg);

    GpuLedger s_gpus(topo), p_gpus(topo);
    PlacementContext s_ctx(topo), p_ctx(topo);

    for (int round = 0; round < 3; ++round) {
        const std::vector<JobSpec> batch =
            randomBatch(rng, 6, 10, 1 + round * 100);
        const BatchResult s_result =
            serial.placeBatch(batch, topo, s_gpus, s_ctx);
        const BatchResult p_result =
            parallel.placeBatch(batch, topo, p_gpus, p_ctx);
        expectSameBatchResult(s_result, p_result,
                              "round " + std::to_string(round));
        EXPECT_EQ(serial.lastWinner(), parallel.lastWinner());
        ASSERT_FALSE(serial.lastWinner().empty());
    }
}

TEST(Portfolio, IntraEpochNestingDegradesToSerialAndStaysIdentical)
{
    // A portfolio at jobs=4 hands jobs=4 to its inner placers too. The
    // lineup fan-out claims the pool first, so the placers' own
    // intra-epoch fan-out must notice it is already on a pool task and
    // degrade to serial — counted, not silent — while the outcome stays
    // bit-identical to the fully serial portfolio.
    const bool metrics_were_on = obs::metricsEnabled();
    obs::setMetricsEnabled(true);
    const ClusterTopology topo = testCluster(4, 4, 4, 4.0);
    Rng rng(29);

    PortfolioConfig serial_cfg;
    serial_cfg.jobs = 1;
    PortfolioConfig nested_cfg;
    nested_cfg.jobs = 4;
    PortfolioPlacer serial(serial_cfg), nested(nested_cfg);

    GpuLedger s_gpus(topo), n_gpus(topo);
    PlacementContext s_ctx(topo), n_ctx(topo);

    for (int round = 0; round < 2; ++round) {
        const std::vector<JobSpec> batch =
            randomBatch(rng, 6, 12, 1 + round * 100);
        const BatchResult s_result =
            serial.placeBatch(batch, topo, s_gpus, s_ctx);
        const BatchResult n_result =
            nested.placeBatch(batch, topo, n_gpus, n_ctx);
        expectSameBatchResult(s_result, n_result,
                              "nested round " + std::to_string(round));
        EXPECT_EQ(serial.lastWinner(), nested.lastWinner());
    }

    const auto counters = obs::Registry::instance().snapshot().counters;
    const auto fallbacks =
        counters.find("placement.par_serial_fallbacks");
    ASSERT_NE(fallbacks, counters.end());
    EXPECT_GE(fallbacks->second, 1);

    // The same jobs=4 config at the top level (no enclosing pool task)
    // does fan out, and counts its per-table tasks.
    const auto it0 = counters.find("placement.par_tasks");
    const auto tasks_before = it0 == counters.end() ? 0 : it0->second;
    NetPackConfig par_config;
    par_config.jobs = 4;
    NetPackPlacer par(par_config);
    GpuLedger p_gpus(topo);
    PlacementContext p_ctx(topo);
    par.placeBatch(randomBatch(rng, 6, 12, 1000), topo, p_gpus, p_ctx);
    const auto after = obs::Registry::instance().snapshot().counters;
    const auto tasks = after.find("placement.par_tasks");
    ASSERT_NE(tasks, after.end());
    EXPECT_GT(tasks->second, tasks_before);
    obs::setMetricsEnabled(metrics_were_on);
}

TEST(Portfolio, WinnerIsAppliedVerbatimToTheRealState)
{
    const bool metrics_were_on = obs::metricsEnabled();
    obs::setMetricsEnabled(true);
    const ClusterTopology topo = testCluster();
    Rng rng(5);
    const std::vector<JobSpec> batch = randomBatch(rng, 5, 8);

    PortfolioPlacer portfolio;
    GpuLedger gpus(topo);
    PlacementContext ctx(topo);
    const BatchResult result =
        portfolio.placeBatch(batch, topo, gpus, ctx);

    // Every returned placement is tracked by the context and allocated
    // in the ledger.
    for (const PlacedJob &job : result.placed) {
        const Placement *tracked = ctx.placementOf(job.id);
        ASSERT_NE(tracked, nullptr);
        EXPECT_EQ(tracked->workers, job.placement.workers);
    }
    EXPECT_EQ(ctx.running().size(), result.placed.size());

    // The winner is a lineup member and its win was counted.
    const auto names = portfolio.strategyNames();
    EXPECT_NE(std::find(names.begin(), names.end(),
                        portfolio.lastWinner()),
              names.end());
    const auto counters = obs::Registry::instance().snapshot().counters;
    const auto it = counters.find("placement.portfolio_wins." +
                                  portfolio.lastWinner());
    ASSERT_NE(it, counters.end());
    EXPECT_GE(it->second, 1);
    obs::setMetricsEnabled(metrics_were_on);
}

TEST(Portfolio, RejectsStochasticAndRecursiveLineups)
{
    PortfolioConfig with_random;
    with_random.strategies = {"NetPack", "Random"};
    EXPECT_THROW(PortfolioPlacer{with_random}, ConfigError);

    PortfolioConfig recursive;
    recursive.strategies = {"Portfolio"};
    EXPECT_THROW(PortfolioPlacer{recursive}, ConfigError);

    PortfolioConfig empty;
    empty.strategies = {};
    EXPECT_THROW(PortfolioPlacer{empty}, ConfigError);

    PortfolioConfig bad_jobs;
    bad_jobs.jobs = 0;
    EXPECT_THROW(PortfolioPlacer{bad_jobs}, ConfigError);
}

// ----------------------------------------------------------- factory

TEST(Factory, UnknownNameListsTheValidOnes)
{
    try {
        makePlacerByName("SkyNet");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        const std::string message = err.what();
        EXPECT_NE(message.find("unknown placer 'SkyNet'"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find("valid names:"), std::string::npos)
            << message;
        for (const std::string &name : placerNames())
            EXPECT_NE(message.find(name), std::string::npos)
                << message << " missing " << name;
    }
}

TEST(Factory, EveryAdvertisedNameRoundTrips)
{
    for (const std::string &name : placerNames()) {
        const auto placer = makePlacerByName(name);
        EXPECT_EQ(placer->name(), name);
    }
}

} // namespace
} // namespace netpack
