/**
 * @file
 * Tests for the embeddable JobManager facade and the experiment helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/experiment.h"
#include "core/manager.h"
#include "placement/baselines.h"

namespace netpack {
namespace {

ClusterConfig
smallCluster()
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    return config;
}

JobSpec
makeSpec(int id, int gpus, const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 100;
    return spec;
}

TEST(JobManager, SubmitPlaceFinishLifecycle)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    manager.submit(makeSpec(0, 4));
    EXPECT_EQ(manager.pending().size(), 1u);

    const auto placed = manager.placeRound();
    ASSERT_EQ(placed.size(), 1u);
    EXPECT_TRUE(manager.pending().empty());
    EXPECT_EQ(manager.running().size(), 1u);
    EXPECT_TRUE(manager.placementOf(JobId(0)).has_value());
    EXPECT_EQ(manager.gpus().totalFreeGpus(), topo.totalGpus() - 4);

    manager.finish(JobId(0));
    EXPECT_TRUE(manager.running().empty());
    EXPECT_EQ(manager.gpus().totalFreeGpus(), topo.totalGpus());
    EXPECT_FALSE(manager.placementOf(JobId(0)).has_value());
}

TEST(JobManager, RejectsInvalidSubmissions)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_THROW(manager.submit(makeSpec(-1, 4)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 0)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 1000)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 4, "NotAModel")), ConfigError);

    manager.submit(makeSpec(0, 4));
    EXPECT_THROW(manager.submit(makeSpec(0, 2)), ConfigError);
    manager.placeRound();
    EXPECT_THROW(manager.submit(makeSpec(0, 2)), ConfigError);
}

TEST(JobManager, FinishUnknownJobThrows)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_THROW(manager.finish(JobId(3)), ConfigError);
}

TEST(JobManager, DeferredJobsGainValue)
{
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 1; // 4 GPUs total
    const ClusterTopology topo(cluster);
    JobManager manager(topo, nullptr, 2.0);
    manager.submit(makeSpec(0, 4));
    manager.submit(makeSpec(1, 4));
    const auto placed = manager.placeRound();
    EXPECT_EQ(placed.size(), 1u);
    ASSERT_EQ(manager.pending().size(), 1u);
    EXPECT_DOUBLE_EQ(manager.pending()[0].value, 3.0); // 1.0 + boost 2.0

    manager.finish(placed[0].id);
    const auto placed2 = manager.placeRound();
    EXPECT_EQ(placed2.size(), 1u);
    EXPECT_TRUE(manager.pending().empty());
}

TEST(JobManager, SteadyStateFacadeReportsRates)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    manager.submit(makeSpec(0, 8)); // must span servers
    const auto placed = manager.placeRound();
    ASSERT_EQ(placed.size(), 1u);
    const SteadyState state = manager.estimateSteadyState();
    const Gbps rate = state.jobThroughput(JobId(0));
    EXPECT_TRUE(rate > 0.0);
}

TEST(JobManager, CustomPlacerIsUsed)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo, makePlacerByName("GB"));
    EXPECT_EQ(manager.placer().name(), "GB");
}

TEST(JobManager, PlaceRoundWithNothingPendingIsEmpty)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_TRUE(manager.placeRound().empty());
}

TEST(Experiment, MakeNetworkModelMatchesFidelity)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    const ClusterTopology topo(config.cluster);
    config.fidelity = Fidelity::Flow;
    EXPECT_NE(makeNetworkModel(config, topo), nullptr);
    config.fidelity = Fidelity::Packet;
    EXPECT_NE(makeNetworkModel(config, topo), nullptr);
}

TEST(Experiment, NormalizeToReference)
{
    const std::map<std::string, double> values = {{"A", 2.0}, {"B", 4.0}};
    const auto normalized = normalizeTo(values, "A");
    EXPECT_DOUBLE_EQ(normalized.at("A"), 1.0);
    EXPECT_DOUBLE_EQ(normalized.at("B"), 2.0);
}

} // namespace
} // namespace netpack
