/**
 * @file
 * Tests for the embeddable JobManager facade, the shared
 * PlacementContext resource engine, the INA rebalancer's context pass,
 * and the experiment helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/experiment.h"
#include "core/ina_rebalancer.h"
#include "core/manager.h"
#include "core/placement_context.h"
#include "placement/baselines.h"

namespace netpack {
namespace {

ClusterConfig
smallCluster()
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    return config;
}

JobSpec
makeSpec(int id, int gpus, const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 100;
    return spec;
}

TEST(JobManager, SubmitPlaceFinishLifecycle)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    manager.submit(makeSpec(0, 4));
    EXPECT_EQ(manager.pending().size(), 1u);

    const auto placed = manager.placeRound();
    ASSERT_EQ(placed.size(), 1u);
    EXPECT_TRUE(manager.pending().empty());
    EXPECT_EQ(manager.running().size(), 1u);
    EXPECT_TRUE(manager.placementOf(JobId(0)).has_value());
    EXPECT_EQ(manager.gpus().totalFreeGpus(), topo.totalGpus() - 4);

    manager.finish(JobId(0));
    EXPECT_TRUE(manager.running().empty());
    EXPECT_EQ(manager.gpus().totalFreeGpus(), topo.totalGpus());
    EXPECT_FALSE(manager.placementOf(JobId(0)).has_value());
}

TEST(JobManager, RejectsInvalidSubmissions)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_THROW(manager.submit(makeSpec(-1, 4)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 0)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 1000)), ConfigError);
    EXPECT_THROW(manager.submit(makeSpec(0, 4, "NotAModel")), ConfigError);

    manager.submit(makeSpec(0, 4));
    EXPECT_THROW(manager.submit(makeSpec(0, 2)), ConfigError);
    manager.placeRound();
    EXPECT_THROW(manager.submit(makeSpec(0, 2)), ConfigError);
}

TEST(JobManager, FinishUnknownJobThrows)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_THROW(manager.finish(JobId(3)), ConfigError);
}

TEST(JobManager, DeferredJobsGainValue)
{
    ClusterConfig cluster = smallCluster();
    cluster.numRacks = 1;
    cluster.serversPerRack = 1; // 4 GPUs total
    const ClusterTopology topo(cluster);
    JobManager manager(topo, nullptr, 2.0);
    manager.submit(makeSpec(0, 4));
    manager.submit(makeSpec(1, 4));
    const auto placed = manager.placeRound();
    EXPECT_EQ(placed.size(), 1u);
    ASSERT_EQ(manager.pending().size(), 1u);
    EXPECT_DOUBLE_EQ(manager.pending()[0].value, 3.0); // 1.0 + boost 2.0

    manager.finish(placed[0].id);
    const auto placed2 = manager.placeRound();
    EXPECT_EQ(placed2.size(), 1u);
    EXPECT_TRUE(manager.pending().empty());
}

TEST(JobManager, SteadyStateFacadeReportsRates)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    manager.submit(makeSpec(0, 8)); // must span servers
    const auto placed = manager.placeRound();
    ASSERT_EQ(placed.size(), 1u);
    const SteadyState state = manager.estimateSteadyState();
    const Gbps rate = state.jobThroughput(JobId(0));
    EXPECT_TRUE(rate > 0.0);
}

TEST(JobManager, CustomPlacerIsUsed)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo, makePlacerByName("GB"));
    EXPECT_EQ(manager.placer().name(), "GB");
}

TEST(JobManager, PlaceRoundWithNothingPendingIsEmpty)
{
    const ClusterTopology topo(smallCluster());
    JobManager manager(topo);
    EXPECT_TRUE(manager.placeRound().empty());
}

PlacedJob
crossServerJob(int id, int server_a, int server_b, int ps,
               std::initializer_list<int> ina_racks)
{
    PlacedJob job;
    job.id = JobId(id);
    job.placement.workers[ServerId(server_a)] = 2;
    job.placement.workers[ServerId(server_b)] = 2;
    job.placement.psServer = ServerId(ps);
    for (int rack : ina_racks)
        job.placement.inaRacks.insert(RackId(rack));
    return job;
}

TEST(PlacementContext, AddRemoveTracksRunningSet)
{
    const ClusterTopology topo(smallCluster());
    PlacementContext ctx(topo);
    EXPECT_EQ(ctx.jobCount(), 0u);

    ctx.addJob(crossServerJob(0, 0, 1, 0, {0}));
    ctx.addJob(crossServerJob(1, 2, 3, 2, {1}));
    EXPECT_EQ(ctx.jobCount(), 2u);
    EXPECT_TRUE(ctx.tracks(JobId(0)));
    ASSERT_NE(ctx.placementOf(JobId(1)), nullptr);
    EXPECT_EQ(ctx.placementOf(JobId(1))->psServer, ServerId(2));

    ctx.removeJob(JobId(0));
    EXPECT_FALSE(ctx.tracks(JobId(0)));
    EXPECT_EQ(ctx.running().size(), 1u);
    EXPECT_EQ(ctx.running()[0].id, JobId(1));
}

TEST(PlacementContext, InvalidateServerDirtiesItsRackAndLinks)
{
    const ClusterTopology topo(smallCluster());
    PlacementContext ctx(topo);
    ctx.addJob(crossServerJob(0, 0, 1, 0, {0}));
    ctx.steadyState();
    ASSERT_FALSE(ctx.dirty());

    // Server 2 lives in rack 1: the failure must dirty rack 1 (PAT),
    // its access link, and rack 1's core link — and escalate to a
    // structural invalidation because victims get killed/resubmitted.
    const ServerId failed(2);
    const RackId rack = topo.rackOf(failed);
    ctx.invalidateServer(failed);
    EXPECT_TRUE(ctx.dirty());
    EXPECT_TRUE(ctx.structuralDirty());
    EXPECT_NE(std::find(ctx.dirtyRacks().begin(), ctx.dirtyRacks().end(),
                        rack),
              ctx.dirtyRacks().end());
    EXPECT_NE(std::find(ctx.dirtyLinks().begin(), ctx.dirtyLinks().end(),
                        topo.accessLink(failed)),
              ctx.dirtyLinks().end());
    EXPECT_NE(std::find(ctx.dirtyLinks().begin(), ctx.dirtyLinks().end(),
                        topo.coreLink(rack)),
              ctx.dirtyLinks().end());

    // The other rack's PAT was not implicated.
    EXPECT_EQ(std::find(ctx.dirtyRacks().begin(), ctx.dirtyRacks().end(),
                        RackId(0)),
              ctx.dirtyRacks().end());
}

TEST(PlacementContext, RemovalNeverServesStaleResiduals)
{
    const ClusterTopology topo(smallCluster());
    PlacementContext ctx(topo);
    // Two jobs share server 0's access link; each alone saturates it.
    ctx.addJob(crossServerJob(0, 0, 1, 0, {0}));
    ctx.addJob(crossServerJob(1, 0, 1, 1, {0}));

    const SteadyState &shared = ctx.steadyState();
    const Gbps rate_shared = shared.jobThroughput(JobId(0));

    ctx.removeJob(JobId(1));
    EXPECT_TRUE(ctx.dirty());
    const SteadyState &alone = ctx.steadyState();
    // Stale state would still show the shared fair share and job 1's
    // leftover rate entry.
    WaterFillingEstimator wf(topo);
    const SteadyState scratch =
        wf.estimate({crossServerJob(0, 0, 1, 0, {0})});
    EXPECT_GT(alone.jobThroughput(JobId(0)), rate_shared + 1.0);
    EXPECT_NEAR(alone.jobThroughput(JobId(0)),
                scratch.jobThroughput(JobId(0)), 1e-9);
    EXPECT_EQ(alone.jobRate.count(JobId(1)), 0u);
}

TEST(PlacementContext, UpdateInaRacksIsStructuralAndNoOpWhenUnchanged)
{
    const ClusterTopology topo(smallCluster());
    PlacementContext ctx(topo);
    const PlacedJob job = crossServerJob(0, 0, 2, 0, {0, 1});
    ctx.addJob(job);
    ctx.steadyState();

    // Same rack set: nothing to invalidate.
    ctx.updateInaRacks(JobId(0), job.placement.inaRacks);
    EXPECT_FALSE(ctx.dirty());

    // Dropping INA on rack 1 reshapes the aggregation tree.
    ctx.updateInaRacks(JobId(0), {RackId(0)});
    EXPECT_TRUE(ctx.structuralDirty());
    EXPECT_NE(std::find(ctx.dirtyRacks().begin(), ctx.dirtyRacks().end(),
                        RackId(1)),
              ctx.dirtyRacks().end());
    ASSERT_NE(ctx.placementOf(JobId(0)), nullptr);
    EXPECT_EQ(ctx.placementOf(JobId(0))->inaRacks.count(RackId(1)), 0u);
}

TEST(PlacementContext, SyncToDiffsTheRunningSet)
{
    const ClusterTopology topo(smallCluster());
    PlacementContext ctx(topo);
    ctx.addJob(crossServerJob(0, 0, 1, 0, {0}));
    ctx.addJob(crossServerJob(1, 2, 3, 2, {1}));
    ctx.steadyState();

    // Job 0 gone, job 2 new, job 1 re-tagged INA-off.
    PlacedJob job1 = crossServerJob(1, 2, 3, 2, {});
    PlacedJob job2 = crossServerJob(2, 0, 2, 0, {0, 1});
    ctx.syncTo({job1, job2});
    EXPECT_FALSE(ctx.tracks(JobId(0)));
    EXPECT_EQ(ctx.jobCount(), 2u);
    ASSERT_NE(ctx.placementOf(JobId(1)), nullptr);
    EXPECT_TRUE(ctx.placementOf(JobId(1))->inaRacks.empty());

    WaterFillingEstimator wf(topo);
    const SteadyState full = wf.estimate({job1, job2});
    const SteadyState &synced = ctx.steadyState();
    for (const auto &[id, rate] : full.jobRate)
        EXPECT_NEAR(synced.jobThroughput(id), rate, 1e-9);
}

TEST(InaRebalancer, ContextPassWritesBackAndInvalidates)
{
    // One rack with tight PAT: two cross-server jobs compete for it.
    ClusterConfig config = smallCluster();
    config.numRacks = 1;
    config.serversPerRack = 4;
    config.torPatGbps = 100.0;
    const ClusterTopology topo(config);

    PlacementContext ctx(topo);
    ctx.addJob(crossServerJob(0, 0, 1, 0, {0}));
    ctx.addJob(crossServerJob(1, 2, 3, 2, {0}));
    ctx.steadyState();

    InaRebalancer rebalancer(topo);
    const VolumeLookup volume_of = [](JobId) -> MBytes { return 100.0; };
    const RebalanceOutcome outcome =
        rebalancer.rebalance(ctx, volume_of);

    // Whatever the assignment decided, the context must agree with it
    // and, if anything changed, be pending a structural re-estimate.
    EXPECT_EQ(outcome.changed.size(),
              static_cast<std::size_t>(outcome.assignment.jobsChanged));
    for (const PlacedJob &job : outcome.changed) {
        ASSERT_NE(ctx.placementOf(job.id), nullptr);
        EXPECT_EQ(ctx.placementOf(job.id)->inaRacks,
                  job.placement.inaRacks);
    }
    if (!outcome.changed.empty())
        EXPECT_TRUE(ctx.structuralDirty());

    // And the post-rebalance steady state must match scratch.
    WaterFillingEstimator wf(topo);
    const SteadyState full = wf.estimate(ctx.running());
    const SteadyState &state = ctx.steadyState();
    for (const auto &[id, rate] : full.jobRate)
        EXPECT_NEAR(state.jobThroughput(id), rate, 1e-9);
}

TEST(Experiment, MakeNetworkModelMatchesFidelity)
{
    ExperimentConfig config;
    config.cluster = smallCluster();
    const ClusterTopology topo(config.cluster);
    config.fidelity = Fidelity::Flow;
    EXPECT_NE(makeNetworkModel(config, topo), nullptr);
    config.fidelity = Fidelity::Packet;
    EXPECT_NE(makeNetworkModel(config, topo), nullptr);
}

TEST(Experiment, NormalizeToReference)
{
    const std::map<std::string, double> values = {{"A", 2.0}, {"B", 4.0}};
    const auto normalized = normalizeTo(values, "A");
    EXPECT_DOUBLE_EQ(normalized.at("A"), 1.0);
    EXPECT_DOUBLE_EQ(normalized.at("B"), 2.0);
}

} // namespace
} // namespace netpack
