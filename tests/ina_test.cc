/**
 * @file
 * Unit tests for the INA layer: the Table-1 per-switch model, the
 * hierarchical Figure-5 model, and the per-job aggregation tree used by
 * water-filling.
 */

#include <gtest/gtest.h>

#include "common/check.h"
#include "ina/aggregation.h"
#include "ina/hierarchy.h"

namespace netpack {
namespace {

// ---------------------------------------------------------- Table 1

TEST(Table1, FullAggregationWhenPatCoversRate)
{
    const SwitchAggregation out = aggregateAtSwitch(10.0, 20.0, 4);
    EXPECT_EQ(out.flows, 1);
    EXPECT_DOUBLE_EQ(out.aggregated, 10.0);
    EXPECT_DOUBLE_EQ(out.unaggregated, 0.0);
    EXPECT_DOUBLE_EQ(out.total(), 10.0);
}

TEST(Table1, BoundaryPatEqualsRate)
{
    const SwitchAggregation out = aggregateAtSwitch(10.0, 10.0, 4);
    EXPECT_EQ(out.flows, 1);
    EXPECT_DOUBLE_EQ(out.aggregated, 10.0);
}

TEST(Table1, PartialAggregation)
{
    // A < C: aggregated = A, unaggregated = (C - A) * n, flows = n.
    const SwitchAggregation out = aggregateAtSwitch(10.0, 4.0, 3);
    EXPECT_EQ(out.flows, 3);
    EXPECT_DOUBLE_EQ(out.aggregated, 4.0);
    EXPECT_DOUBLE_EQ(out.unaggregated, 18.0);
    EXPECT_DOUBLE_EQ(out.total(), 22.0);
}

TEST(Table1, ZeroPatPassesEverythingThrough)
{
    const SwitchAggregation out = aggregateAtSwitch(10.0, 0.0, 5);
    EXPECT_EQ(out.flows, 5);
    EXPECT_DOUBLE_EQ(out.aggregated, 0.0);
    EXPECT_DOUBLE_EQ(out.unaggregated, 50.0);
}

TEST(Table1, NoFlowsNoTraffic)
{
    const SwitchAggregation out = aggregateAtSwitch(10.0, 5.0, 0);
    EXPECT_EQ(out.flows, 0);
    EXPECT_DOUBLE_EQ(out.total(), 0.0);
}

TEST(Table1, ZeroRateNoTraffic)
{
    const SwitchAggregation out = aggregateAtSwitch(0.0, 5.0, 3);
    EXPECT_EQ(out.flows, 0);
    EXPECT_DOUBLE_EQ(out.total(), 0.0);
}

/** Property sweep: conservation and monotonicity of the Table-1 model. */
class Table1Sweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>>
{
};

TEST_P(Table1Sweep, OutputNeverExceedsInputAndSavesWithPat)
{
    const auto [rate, pat, flows] = GetParam();
    const SwitchAggregation out = aggregateAtSwitch(rate, pat, flows);
    const double input = rate * flows;
    // The switch never amplifies traffic...
    EXPECT_LE(out.total(), input + 1e-9);
    // ...and with no PAT, output equals input exactly.
    if (pat == 0.0 && flows > 0 && rate > 0.0) {
        EXPECT_DOUBLE_EQ(out.total(), input);
    }
    // More PAT never produces more upward traffic.
    const SwitchAggregation more = aggregateAtSwitch(rate, pat * 2 + 1.0,
                                                     flows);
    EXPECT_LE(more.total(), out.total() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Table1Sweep,
    ::testing::Combine(::testing::Values(0.0, 1.0, 10.0, 100.0),
                       ::testing::Values(0.0, 0.5, 10.0, 1000.0),
                       ::testing::Values(0, 1, 2, 8)));

// ------------------------------------------------- hierarchical (Fig 5)

/** The Figure-5 example: 4 racks, 2 workers each, A1 < Ap < A3 < A4. */
HierarchicalJobModel
figure5Model()
{
    HierarchicalJobModel model;
    model.remoteRackWorkers = {2, 2, 2};
    model.remoteRackPat = {10.0, 30.0, 40.0}; // A1 < A3 < A4
    model.psRackWorkers = 2;
    model.psRackPat = 20.0; // Ap
    return model;
}

TEST(Figure5, LowRateFullyAggregates)
{
    const auto eval = figure5Model().evaluate(5.0);
    EXPECT_EQ(eval.flowsCrossRack, 3); // one merged stream per rack
    EXPECT_EQ(eval.flowsToPs, 1);
    EXPECT_DOUBLE_EQ(eval.trafficToPs, 5.0);
    EXPECT_NEAR(eval.aggregationRatio, 1.0, 1e-9);
}

TEST(Figure5, RateAboveSmallestLeafPat)
{
    // A1 < C <= Ap: rack 1 stops merging (2 flows), root still merges.
    const auto eval = figure5Model().evaluate(15.0);
    EXPECT_EQ(eval.flowsCrossRack, 4);
    EXPECT_EQ(eval.flowsToPs, 1);
}

TEST(Figure5, RateAbovePsPat)
{
    // Ap < C <= A3: FC stays 4; the root passes all 6 incoming flows.
    const auto eval = figure5Model().evaluate(25.0);
    EXPECT_EQ(eval.flowsCrossRack, 4);
    EXPECT_EQ(eval.flowsToPs, 6); // 4 remote + 2 local
}

TEST(Figure5, RateAboveEverything)
{
    // C > A4: FC = 6 (all remote workers), FS = 8 (all workers).
    const auto eval = figure5Model().evaluate(50.0);
    EXPECT_EQ(eval.flowsCrossRack, 6);
    EXPECT_EQ(eval.flowsToPs, 8);
}

TEST(Figure5, FlowCountsAreMonotoneInRate)
{
    const HierarchicalJobModel model = figure5Model();
    int last_fc = 0, last_fs = 0;
    for (double c = 1.0; c <= 60.0; c += 1.0) {
        const auto eval = model.evaluate(c);
        EXPECT_GE(eval.flowsCrossRack, last_fc);
        EXPECT_GE(eval.flowsToPs, last_fs);
        last_fc = eval.flowsCrossRack;
        last_fs = eval.flowsToPs;
    }
}

TEST(Figure5, TotalWorkers)
{
    EXPECT_EQ(figure5Model().totalWorkers(), 8);
}

TEST(Figure5, MismatchedVectorsRejected)
{
    HierarchicalJobModel model;
    model.remoteRackWorkers = {2, 2};
    model.remoteRackPat = {10.0};
    EXPECT_THROW(model.evaluate(1.0), ConfigError);
}

TEST(AggregationRatio, SingleSwitchMatchesPatRatio)
{
    // Figure 14a setup: 2 workers + PS behind one switch; the predicted
    // aggregation ratio is y = x where x = PAT / rate.
    for (double x : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        HierarchicalJobModel model;
        model.psRackWorkers = 2;
        model.psRackPat = 10.0 * x;
        const auto eval = model.evaluate(10.0);
        EXPECT_NEAR(eval.aggregationRatio, x, 1e-9) << "x=" << x;
    }
}

// ------------------------------------------------------ job hierarchy

ClusterTopology
testTopo()
{
    ClusterConfig config;
    config.numRacks = 3;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    return ClusterTopology(config);
}

Placement
crossRackPlacement()
{
    Placement p;
    p.workers[ServerId(0)] = 2; // rack 0
    p.workers[ServerId(1)] = 1; // rack 0
    p.workers[ServerId(2)] = 1; // rack 1
    p.psServer = ServerId(4);   // rack 2
    p.inaRacks = {RackId(0), RackId(1), RackId(2)};
    return p;
}

TEST(JobHierarchy, SingleServerJobIsLocal)
{
    const ClusterTopology topo = testTopo();
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    const JobHierarchy h(topo, JobId(0), p);
    EXPECT_TRUE(h.local());
    EXPECT_EQ(h.workerServerCount(), 0);
}

TEST(JobHierarchy, CrossRackStructure)
{
    const ClusterTopology topo = testTopo();
    const JobHierarchy h(topo, JobId(0), crossRackPlacement());
    EXPECT_FALSE(h.local());
    EXPECT_EQ(h.workerServerCount(), 3);

    // Nodes: PS root + PS ToR + 2 remote ToRs + 3 worker leaves = 7.
    EXPECT_EQ(h.nodes().size(), 7u);
    EXPECT_EQ(h.nodes()[0].kind, HierarchyNode::Kind::Ps);
    EXPECT_EQ(h.inaRacks().size(), 3u);
}

TEST(JobHierarchy, FlowsWithAmplePatCollapseToOne)
{
    const ClusterTopology topo = testTopo();
    JobHierarchy h(topo, JobId(0), crossRackPlacement());
    std::vector<Gbps> pat(3, 400.0);
    h.updateFlows(pat);
    // Every switch aggregates: the PS ToR sends one flow to the PS.
    for (const auto &node : h.nodes()) {
        if (node.kind == HierarchyNode::Kind::Switch) {
            EXPECT_EQ(node.flows, 1);
        }
    }
}

TEST(JobHierarchy, ExhaustedPatPassesFlowsThrough)
{
    const ClusterTopology topo = testTopo();
    JobHierarchy h(topo, JobId(0), crossRackPlacement());
    std::vector<Gbps> pat = {0.0, 400.0, 400.0}; // rack 0 exhausted
    h.updateFlows(pat);
    int rack0_flows = 0;
    for (const auto &node : h.nodes()) {
        if (node.kind == HierarchyNode::Kind::Switch &&
            node.rack == RackId(0))
            rack0_flows = node.flows;
    }
    EXPECT_EQ(rack0_flows, 2); // two worker servers in rack 0 pass through
}

TEST(JobHierarchy, InaDisabledRackNeverAggregates)
{
    const ClusterTopology topo = testTopo();
    Placement p = crossRackPlacement();
    p.inaRacks = {RackId(1), RackId(2)}; // rack 0 disabled
    JobHierarchy h(topo, JobId(0), p);
    std::vector<Gbps> pat(3, 400.0);
    h.updateFlows(pat);
    for (const auto &node : h.nodes()) {
        if (node.kind == HierarchyNode::Kind::Switch &&
            node.rack == RackId(0)) {
            EXPECT_FALSE(node.inaEnabled);
            EXPECT_EQ(node.flows, 2);
        }
    }
    EXPECT_EQ(h.inaRacks().size(), 2u);
}

TEST(JobHierarchy, AccumulateLinkFlowsChargesEveryHop)
{
    const ClusterTopology topo = testTopo();
    JobHierarchy h(topo, JobId(0), crossRackPlacement());
    std::vector<Gbps> pat(3, 400.0);
    h.updateFlows(pat);
    std::vector<int> flows(static_cast<std::size_t>(topo.numLinks()), 0);
    h.accumulateLinkFlows(flows);

    // Worker access links carry one flow each.
    EXPECT_EQ(flows[topo.accessLink(ServerId(0)).index()], 1);
    EXPECT_EQ(flows[topo.accessLink(ServerId(1)).index()], 1);
    EXPECT_EQ(flows[topo.accessLink(ServerId(2)).index()], 1);
    // PS access link carries the PS ToR's single merged flow.
    EXPECT_EQ(flows[topo.accessLink(ServerId(4)).index()], 1);
    // Remote rack core links carry one merged flow each...
    EXPECT_EQ(flows[topo.coreLink(RackId(0)).index()], 1);
    EXPECT_EQ(flows[topo.coreLink(RackId(1)).index()], 1);
    // ...and the PS rack's core link absorbs both remote streams.
    EXPECT_EQ(flows[topo.coreLink(RackId(2)).index()], 2);
}

TEST(JobHierarchy, IncomingFlowQueries)
{
    const ClusterTopology topo = testTopo();
    JobHierarchy h(topo, JobId(0), crossRackPlacement());
    std::vector<Gbps> pat(3, 400.0);
    h.updateFlows(pat);
    // Rack 0 ToR sees its two worker servers.
    EXPECT_EQ(h.incomingFlowsAtRack(RackId(0)), 2);
    EXPECT_EQ(h.incomingFlowsAtRack(RackId(1)), 1);
    // PS rack ToR sees the two merged remote streams (no local workers).
    EXPECT_EQ(h.incomingFlowsAtRack(RackId(2)), 2);
    // Total fan-in over INA switches = 2 + 1 + 2.
    EXPECT_EQ(h.totalIncomingInaFlows(), 5);
    EXPECT_EQ(h.incomingFlowsAtRack(RackId(42)), 0);
}

TEST(JobHierarchy, PsColocatedWithWorkersSingleRack)
{
    const ClusterTopology topo = testTopo();
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.workers[ServerId(1)] = 2;
    p.psServer = ServerId(1);
    p.inaRacks = {RackId(0)};
    JobHierarchy h(topo, JobId(3), p);
    EXPECT_FALSE(h.local());
    // PS root + PS ToR + 2 worker leaves.
    EXPECT_EQ(h.nodes().size(), 4u);
    std::vector<Gbps> pat(3, 400.0);
    h.updateFlows(pat);
    std::vector<int> flows(static_cast<std::size_t>(topo.numLinks()), 0);
    h.accumulateLinkFlows(flows);
    // Server 1 hosts both a worker stream and the PS delivery: 2 flows.
    EXPECT_EQ(flows[topo.accessLink(ServerId(1)).index()], 2);
    // No core link is touched.
    EXPECT_EQ(flows[topo.coreLink(RackId(0)).index()], 0);
}

TEST(JobHierarchy, MultiServerWithoutPsIsInternalError)
{
    const ClusterTopology topo = testTopo();
    Placement p;
    p.workers[ServerId(0)] = 1;
    p.workers[ServerId(2)] = 1;
    EXPECT_THROW(JobHierarchy(topo, JobId(0), p), InternalError);
}

} // namespace
} // namespace netpack
