/**
 * @file
 * Cross-module property tests: invariants that must hold over random
 * instances — aggregation dominance, PAT monotonicity, hierarchy flow
 * conservation, flow-vs-packet model agreement, and placement
 * determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "placement/netpack_placer.h"
#include "sim/flow_model.h"
#include "sim/packet_model.h"
#include "waterfill/steady_state.h"

namespace netpack {
namespace {

ClusterTopology
randomTopo(Rng &rng, Gbps pat)
{
    ClusterConfig config;
    config.numRacks = static_cast<int>(rng.uniformInt(2, 4));
    config.serversPerRack = static_cast<int>(rng.uniformInt(2, 4));
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

PlacedJob
randomNetworkJob(Rng &rng, const ClusterTopology &topo, int id)
{
    PlacedJob job;
    job.id = JobId(id);
    const int spread = static_cast<int>(rng.uniformInt(2, 4));
    for (int w = 0; w < spread; ++w) {
        const ServerId server(static_cast<int>(
            rng.uniformInt(0, topo.numServers() - 1)));
        job.placement.workers[server] += 1;
    }
    job.placement.psServer = ServerId(
        static_cast<int>(rng.uniformInt(0, topo.numServers() - 1)));
    for (RackId rack : job.placement.allRacks(topo))
        job.placement.inaRacks.insert(rack);
    return job;
}

class PropertySeed : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17};
};

using AggregationDominance = PropertySeed;

TEST_P(AggregationDominance, InaNeverSlowsASingleJob)
{
    const ClusterTopology topo = randomTopo(rng_, 300.0);
    PlacedJob with_ina = randomNetworkJob(rng_, topo, 0);
    PlacedJob without_ina = with_ina;
    without_ina.placement.inaRacks.clear();

    WaterFillingEstimator wf(topo);
    const Gbps rate_ina =
        wf.estimate({with_ina}).jobThroughput(JobId(0));
    const Gbps rate_plain =
        wf.estimate({without_ina}).jobThroughput(JobId(0));
    if (std::isinf(rate_ina))
        return; // degenerated to a local job
    EXPECT_GE(rate_ina, rate_plain - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationDominance,
                         ::testing::Range(0, 16));

using PatMonotonicity = PropertySeed;

TEST_P(PatMonotonicity, MorePatNeverSlowsASingleJob)
{
    Rng topo_rng = rng_.fork();
    const ClusterTopology lo_topo = randomTopo(topo_rng, 20.0);
    ClusterConfig hi_config = lo_topo.config();
    hi_config.torPatGbps = 500.0;
    const ClusterTopology hi_topo(hi_config);

    const PlacedJob job = randomNetworkJob(rng_, lo_topo, 0);
    WaterFillingEstimator lo(lo_topo), hi(hi_topo);
    const Gbps rate_lo = lo.estimate({job}).jobThroughput(JobId(0));
    const Gbps rate_hi = hi.estimate({job}).jobThroughput(JobId(0));
    if (std::isinf(rate_lo))
        return;
    EXPECT_GE(rate_hi, rate_lo - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatMonotonicity, ::testing::Range(0, 16));

using FlowConservation = PropertySeed;

TEST_P(FlowConservation, WorkerLeavesChargeExactlyOneFlowEach)
{
    const ClusterTopology topo = randomTopo(rng_, 300.0);
    const PlacedJob job = randomNetworkJob(rng_, topo, 0);
    JobHierarchy hierarchy(topo, JobId(0), job.placement);
    if (hierarchy.local())
        return;
    std::vector<Gbps> pat(static_cast<std::size_t>(topo.numRacks()),
                          300.0);
    hierarchy.updateFlows(pat);
    std::vector<int> flows(static_cast<std::size_t>(topo.numLinks()), 0);
    hierarchy.accumulateLinkFlows(flows);

    // Each worker server's access link carries exactly one upward flow
    // (plus one PS delivery if the PS shares that server).
    for (const auto &[server, count] : job.placement.workers) {
        (void)count;
        int expected = 1;
        if (server == job.placement.psServer)
            expected += 1;
        EXPECT_EQ(flows[topo.accessLink(server).index()], expected);
    }
    // With ample PAT, the PS access link carries exactly one merged flow
    // (plus a worker flow if colocated).
    int expected_ps = 1;
    if (job.placement.workers.count(job.placement.psServer))
        expected_ps += 1;
    EXPECT_EQ(flows[topo.accessLink(job.placement.psServer).index()],
              expected_ps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation,
                         ::testing::Range(0, 16));

using ModelAgreement = PropertySeed;

TEST_P(ModelAgreement, FlowAndPacketJctsAgreeForOneJob)
{
    // Single uncontended job: the fluid prediction and the RTT-slotted
    // AIMD measurement must land close (ramp-up costs a little).
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 5;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 300.0;
    const ClusterTopology topo(config);

    const auto &zoo = ModelZoo::all();
    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = zoo[static_cast<std::size_t>(rng_.uniformInt(
                             0, static_cast<std::int64_t>(zoo.size()) -
                                    1))]
                         .name;
    spec.gpuDemand = 4;
    spec.iterations = rng_.uniformInt(20, 80);
    Placement placement;
    placement.workers[ServerId(0)] = 2;
    placement.workers[ServerId(1)] = 2;
    placement.psServer = ServerId(2);
    placement.inaRacks = {RackId(0)};

    FlowNetworkModel flow(topo);
    flow.jobStarted(spec, placement, 0.0);
    std::vector<JobId> completed;
    const Seconds flow_jct = flow.advance(0.0, 1e9, completed);
    ASSERT_EQ(completed.size(), 1u);

    PacketNetworkModel packet(topo);
    packet.jobStarted(spec, placement, 0.0);
    Seconds packet_jct = 0.0;
    completed.clear();
    while (completed.empty())
        packet_jct = packet.advance(packet_jct, packet_jct + 10.0,
                                    completed);

    EXPECT_GT(packet_jct, flow_jct * 0.9);
    EXPECT_LT(packet_jct, flow_jct * 1.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelAgreement, ::testing::Range(0, 10));

using PlacementDeterminism = PropertySeed;

TEST_P(PlacementDeterminism, NetPackIsAPureFunctionOfItsInputs)
{
    Rng topo_rng = rng_.fork();
    const ClusterTopology topo = randomTopo(topo_rng, 200.0);
    std::vector<JobSpec> batch;
    const auto &zoo = ModelZoo::all();
    for (int j = 0; j < 5; ++j) {
        JobSpec spec;
        spec.id = JobId(j);
        spec.modelName =
            zoo[static_cast<std::size_t>(rng_.uniformInt(
                    0, static_cast<std::int64_t>(zoo.size()) - 1))]
                .name;
        spec.gpuDemand = static_cast<int>(rng_.uniformInt(1, 10));
        spec.iterations = 100;
        batch.push_back(spec);
    }

    GpuLedger gpus_a(topo), gpus_b(topo);
    NetPackPlacer placer_a, placer_b;
    const auto a = placer_a.placeBatch(batch, topo, gpus_a, {});
    const auto b = placer_b.placeBatch(batch, topo, gpus_b, {});

    ASSERT_EQ(a.placed.size(), b.placed.size());
    for (std::size_t i = 0; i < a.placed.size(); ++i) {
        EXPECT_EQ(a.placed[i].id.value, b.placed[i].id.value);
        EXPECT_EQ(a.placed[i].placement.workers,
                  b.placed[i].placement.workers);
        EXPECT_EQ(a.placed[i].placement.psServer.value,
                  b.placed[i].placement.psServer.value);
        EXPECT_EQ(a.placed[i].placement.inaRacks,
                  b.placed[i].placement.inaRacks);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementDeterminism,
                         ::testing::Range(0, 8));

TEST(GpuLedgerCopy, CopiesAreIndependent)
{
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 2;
    const ClusterTopology topo(config);
    GpuLedger original(topo);
    original.allocate(ServerId(0), JobId(1), 2);

    GpuLedger copy = original;
    copy.allocate(ServerId(0), JobId(2), 2);
    EXPECT_EQ(copy.freeGpus(ServerId(0)), 0);
    EXPECT_EQ(original.freeGpus(ServerId(0)), 2);
    copy.releaseJob(JobId(1));
    EXPECT_EQ(original.heldGpus(ServerId(0), JobId(1)), 2);
}

} // namespace
} // namespace netpack
