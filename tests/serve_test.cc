/**
 * @file
 * netpack::serve end-to-end: protocol codec round-trips, the shared
 * JSON text escaping helper, admission-queue shedding, engine
 * validation/mutation/what-if semantics, WAL round-trips and the
 * torn-tail recovery contract (crafted byte-exact truncations),
 * snapshot-bounded replay, kill/restart bit-identity, and a live
 * socket smoke test through ServeClient.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/json_text.h"
#include "exec/thread_pool.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/placement_server.h"
#include "serve/protocol.h"
#include "serve/wal.h"
#include "workload/models.h"

namespace netpack {
namespace serve {
namespace {

// --- fixtures ----------------------------------------------------------

ClusterConfig
smallCluster()
{
    ClusterConfig cluster;
    cluster.numRacks = 2;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    return cluster;
}

JobSpec
job(int id, int demand, const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = demand;
    spec.iterations = 1000;
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "serve_test_" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// --- shared JSON text helper -------------------------------------------

TEST(JsonText, EscapeRoundTrip)
{
    const std::string raw = "a\"b\\c\n\t\x01 end";
    const std::string escaped = jsonEscapeText(raw);
    EXPECT_EQ(jsonUnescapeText(escaped), raw);
    EXPECT_EQ(jsonEscapeText("plain"), "plain");
}

TEST(JsonText, SurrogatePairs)
{
    // U+1F600 as a surrogate pair.
    EXPECT_EQ(jsonUnescapeText("\\ud83d\\ude00"), "\xF0\x9F\x98\x80");
    EXPECT_THROW(jsonUnescapeText("\\ud83d"), ConfigError);
    EXPECT_THROW(jsonUnescapeText("\\ude00"), ConfigError);
    EXPECT_THROW(jsonUnescapeText("\\uZZZZ"), ConfigError);
    EXPECT_THROW(jsonUnescapeText("\\q"), ConfigError);
}

// --- protocol codecs ---------------------------------------------------

TEST(Protocol, RequestRoundTripsEveryOp)
{
    Request place;
    place.id = 7;
    place.op = Op::Place;
    place.jobs = {job(1, 4), job(2, 8, "ResNet50")};

    Request depart;
    depart.id = 8;
    depart.op = Op::Depart;
    depart.departs = {JobId(1), JobId(2)};

    Request stats;
    stats.id = 9;
    stats.op = Op::Stats;

    for (const Request &request : {place, depart, stats}) {
        const Request parsed = parseRequest(serializeRequest(request));
        EXPECT_EQ(parsed.id, request.id);
        EXPECT_EQ(parsed.op, request.op);
        ASSERT_EQ(parsed.jobs.size(), request.jobs.size());
        for (std::size_t i = 0; i < parsed.jobs.size(); ++i) {
            EXPECT_EQ(parsed.jobs[i].id, request.jobs[i].id);
            EXPECT_EQ(parsed.jobs[i].modelName,
                      request.jobs[i].modelName);
            EXPECT_EQ(parsed.jobs[i].gpuDemand,
                      request.jobs[i].gpuDemand);
        }
        EXPECT_EQ(parsed.departs, request.departs);
        // Codec symmetry: re-serialization is byte-identical.
        EXPECT_EQ(serializeRequest(parsed), serializeRequest(request));
    }
}

TEST(Protocol, ResponseRoundTrips)
{
    Response response;
    response.id = 42;
    response.ok = true;
    response.deferred = {JobId(5)};
    response.seq = 17;
    const Response parsed = parseResponse(serializeResponse(response));
    EXPECT_EQ(parsed.id, 42);
    EXPECT_TRUE(parsed.ok);
    EXPECT_EQ(parsed.deferred, response.deferred);
    EXPECT_EQ(parsed.seq, 17u);

    Response rejected;
    rejected.id = 1;
    rejected.ok = false;
    rejected.rejected = true;
    rejected.error = "queue_full";
    const Response parsedRejected =
        parseResponse(serializeResponse(rejected));
    EXPECT_TRUE(parsedRejected.rejected);
    EXPECT_FALSE(parsedRejected.ok);
    EXPECT_EQ(parsedRejected.error, "queue_full");

    Response stats;
    stats.id = 2;
    stats.ok = true;
    stats.hasStats = true;
    stats.stats.seq = 3;
    stats.stats.runningJobs = 4;
    stats.stats.freeGpus = 12;
    stats.stats.digest = "00ff00ff00ff00ff";
    const Response parsedStats =
        parseResponse(serializeResponse(stats));
    ASSERT_TRUE(parsedStats.hasStats);
    EXPECT_EQ(parsedStats.stats.seq, 3u);
    EXPECT_EQ(parsedStats.stats.runningJobs, 4);
    EXPECT_EQ(parsedStats.stats.freeGpus, 12);
    EXPECT_EQ(parsedStats.stats.digest, "00ff00ff00ff00ff");
}

TEST(Protocol, MalformedLinesThrow)
{
    EXPECT_THROW(parseRequest("not json"), ConfigError);
    EXPECT_THROW(parseRequest("{\"op\":\"nosuch\",\"id\":1}"),
                 ConfigError);
    EXPECT_THROW(parseResponse("{\"truncated\":"), ConfigError);
}

// --- admission control -------------------------------------------------

TEST(Admission, ShedsBeyondCapacityFifo)
{
    AdmissionQueue queue(2);
    Request first;
    first.id = 1;
    Request second;
    second.id = 2;
    Request third;
    third.id = 3;
    EXPECT_TRUE(queue.tryEnqueue(Envelope{first, -1}));
    EXPECT_TRUE(queue.tryEnqueue(Envelope{second, -1}));
    EXPECT_FALSE(queue.tryEnqueue(Envelope{third, -1}));
    EXPECT_EQ(queue.shedCount(), 1u);
    EXPECT_EQ(queue.size(), 2u);

    EXPECT_EQ(queue.pop()->request.id, 1);
    // A freed slot admits again.
    EXPECT_TRUE(queue.tryEnqueue(Envelope{third, -1}));
    EXPECT_EQ(queue.pop()->request.id, 2);
    EXPECT_EQ(queue.pop()->request.id, 3);
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_EQ(queue.shedCount(), 1u);
}

// --- engine ------------------------------------------------------------

TEST(Engine, ValidateRejectsBadBatches)
{
    EngineConfig config;
    config.cluster = smallCluster();
    PlacementEngine engine(config);

    EXPECT_THROW(engine.validatePlace({}), ConfigError);
    EXPECT_THROW(engine.validatePlace({job(1, 4), job(1, 4)}),
                 ConfigError);
    EXPECT_THROW(engine.validatePlace({job(1, 0)}), ConfigError);
    EXPECT_THROW(engine.validatePlace({job(1, 4, "NoSuchModel")}),
                 ConfigError);
    EXPECT_THROW(engine.validateDepart({JobId(99)}), ConfigError);

    engine.applyPlace({job(1, 4)});
    EXPECT_THROW(engine.validatePlace({job(1, 4)}), ConfigError);
    EXPECT_NO_THROW(engine.validateDepart({JobId(1)}));
    EXPECT_THROW(engine.validateDepart({JobId(1), JobId(1)}),
                 ConfigError);
}

TEST(Engine, PlaceDepartUpdatesCountersAndLedger)
{
    EngineConfig config;
    config.cluster = smallCluster();
    PlacementEngine engine(config);
    const std::int64_t totalGpus = engine.freeGpus();

    const BatchResult result = engine.applyPlace({job(1, 4), job(2, 8)});
    EXPECT_EQ(result.placed.size(), 2u);
    EXPECT_EQ(engine.runningJobs(), 2);
    EXPECT_EQ(engine.freeGpus(), totalGpus - 12);
    EXPECT_EQ(engine.placedJobs(), 2u);

    engine.applyDepart({JobId(1)});
    EXPECT_EQ(engine.runningJobs(), 1);
    EXPECT_EQ(engine.freeGpus(), totalGpus - 8);
    EXPECT_EQ(engine.departedJobs(), 1u);
}

TEST(Engine, WhatIfIsReadOnlyAndPoolInvariant)
{
    EngineConfig config;
    config.cluster = smallCluster();
    PlacementEngine engine(config);
    engine.applyPlace({job(1, 4), job(2, 4)});
    const std::string before = engine.canonicalState(2);

    std::vector<JobSpec> candidates;
    for (int i = 0; i < 6; ++i)
        candidates.push_back(job(100 + i, 2 + i));

    const std::vector<QueryResult> serial =
        engine.whatIf(candidates, nullptr);
    exec::ThreadPool pool(4);
    const std::vector<QueryResult> pooled =
        engine.whatIf(candidates, &pool);

    ASSERT_EQ(serial.size(), candidates.size());
    ASSERT_EQ(pooled.size(), candidates.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].job, candidates[i].id);
        EXPECT_EQ(serial[i].placeable, pooled[i].placeable);
        EXPECT_DOUBLE_EQ(serial[i].commTime, pooled[i].commTime);
        if (serial[i].placeable) {
            EXPECT_EQ(serial[i].placement.workers,
                      pooled[i].placement.workers);
            EXPECT_EQ(serial[i].placement.psServer,
                      pooled[i].placement.psServer);
        }
    }
    // The live state never moved.
    EXPECT_EQ(engine.canonicalState(2), before);
}

TEST(Engine, OversizedCandidateIsUnplaceableNotFatal)
{
    EngineConfig config;
    config.cluster = smallCluster(); // 32 GPUs total
    PlacementEngine engine(config);
    const std::vector<QueryResult> results =
        engine.whatIf({job(1, 1000)}, nullptr);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].placeable);
}

// --- WAL ---------------------------------------------------------------

WalHeader
smallHeader()
{
    WalHeader header;
    header.cluster = smallCluster();
    header.seed = 3;
    return header;
}

TEST(Wal, WriteLoadRoundTrip)
{
    const std::string path = tempPath("roundtrip.ndjson");
    {
        WalWriter writer(path, smallHeader());
        writer.appendPlace(1, {job(1, 4), job(2, 8, "ResNet50")});
        writer.appendDepart(2, {JobId(1)});
        EXPECT_EQ(writer.eventsWritten(), 2u);
    }
    const WalLoad load = loadWal(path);
    EXPECT_FALSE(load.torn);
    EXPECT_EQ(serializeWalHeader(load.header),
              serializeWalHeader(smallHeader()));
    ASSERT_EQ(load.events.size(), 2u);
    EXPECT_EQ(load.events[0].kind, WalEvent::Kind::Place);
    EXPECT_EQ(load.events[0].seq, 1u);
    ASSERT_EQ(load.events[0].jobs.size(), 2u);
    EXPECT_EQ(load.events[0].jobs[1].modelName, "ResNet50");
    EXPECT_EQ(load.events[1].kind, WalEvent::Kind::Depart);
    EXPECT_EQ(load.events[1].departs, std::vector<JobId>{JobId(1)});
    std::remove(path.c_str());
}

TEST(Wal, SnapshotEventRoundTrips)
{
    EngineConfig config;
    config.cluster = smallCluster();
    PlacementEngine engine(config);
    engine.applyPlace({job(1, 4), job(2, 8)});
    engine.applyDepart({JobId(1)});

    const std::string path = tempPath("snapshot.ndjson");
    {
        WalWriter writer(path, smallHeader());
        writer.appendSnapshot(engine.snapshot(2));
    }
    const WalLoad load = loadWal(path);
    ASSERT_EQ(load.events.size(), 1u);
    ASSERT_EQ(load.events[0].kind, WalEvent::Kind::Snapshot);
    ASSERT_NE(load.events[0].snapshot, nullptr);

    PlacementEngine restored(config);
    restored.restore(*load.events[0].snapshot);
    EXPECT_EQ(restored.canonicalState(2), engine.canonicalState(2));
    EXPECT_EQ(restored.freeGpus(), engine.freeGpus());
    std::remove(path.c_str());
}

TEST(Wal, TornTailKeepsPrefixAtEveryTruncation)
{
    // Craft the file byte-exactly, then replay every truncation point
    // inside the final event line: each must load the 2-event prefix
    // with torn=true (except the bare "header only" end-state).
    const std::string header = serializeWalHeader(smallHeader());
    WalEvent place;
    place.kind = WalEvent::Kind::Place;
    place.seq = 1;
    place.jobs = {job(1, 4)};
    WalEvent depart;
    depart.kind = WalEvent::Kind::Depart;
    depart.seq = 2;
    depart.departs = {JobId(1)};
    const std::string line1 = serializeWalEvent(place);
    const std::string line2 = serializeWalEvent(depart);
    const std::string intact =
        header + "\n" + line1 + "\n" + line2 + "\n";
    const std::size_t prefixBytes =
        header.size() + 1 + line1.size() + 1;

    const std::string path = tempPath("torn.ndjson");
    // Cutting only the final '\n' leaves a complete, parseable event —
    // that loads clean (the newline is not part of the contract).
    {
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << intact.substr(0, intact.size() - 1);
    }
    const WalLoad noNewline = loadWal(path);
    EXPECT_FALSE(noNewline.torn);
    EXPECT_EQ(noNewline.events.size(), 2u);

    for (std::size_t cut = prefixBytes + 1; cut + 1 < intact.size();
         ++cut) {
        {
            std::ofstream os(path, std::ios::trunc | std::ios::binary);
            os << intact.substr(0, cut);
        }
        const WalLoad load = loadWal(path);
        EXPECT_TRUE(load.torn) << "cut at byte " << cut;
        ASSERT_EQ(load.events.size(), 1u) << "cut at byte " << cut;
        EXPECT_EQ(load.events[0].seq, 1u);
    }

    // Recovery's rewrite drops the tail; a reload is clean.
    {
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << intact.substr(0, intact.size() - 3);
    }
    WalLoad load = loadWal(path);
    EXPECT_TRUE(load.torn);
    rewriteWal(path, load.header, load.events);
    const WalLoad reloaded = loadWal(path);
    EXPECT_FALSE(reloaded.torn);
    EXPECT_EQ(reloaded.events.size(), 1u);
    EXPECT_EQ(readFile(path), header + "\n" + line1 + "\n");
    std::remove(path.c_str());
}

TEST(Wal, MalformedHeaderThrows)
{
    const std::string path = tempPath("badheader.ndjson");
    {
        std::ofstream os(path, std::ios::trunc);
        os << "{\"schema\":\"other/1\"}\n";
    }
    EXPECT_THROW(loadWal(path), ConfigError);
    std::remove(path.c_str());
}

// --- recovery ----------------------------------------------------------

/** Replay-based recovery equals the uninterrupted engine, bit for bit. */
TEST(Recovery, ReplayMatchesLiveEngine)
{
    EngineConfig config;
    config.cluster = smallCluster();
    const std::string path = tempPath("recover.ndjson");

    WalHeader header;
    header.cluster = config.cluster;
    PlacementEngine live(config);
    {
        WalWriter writer(path, header);
        std::uint64_t seq = 0;
        for (int i = 1; i <= 10; ++i) {
            const JobSpec spec = job(i, 1 + i % 6);
            writer.appendPlace(++seq, {spec});
            live.applyPlace({spec});
            if (i % 3 == 0) {
                writer.appendDepart(++seq, {JobId(i - 1)});
                live.applyDepart({JobId(i - 1)});
            }
            if (i == 5)
                writer.appendSnapshot(live.snapshot(seq));
        }
    }

    std::uint64_t lastSeq = 0;
    const WalLoad load = loadWal(path);
    EXPECT_FALSE(load.torn);
    const std::unique_ptr<PlacementEngine> recovered =
        recoverEngine(load, lastSeq);
    EXPECT_EQ(lastSeq, 13u);
    EXPECT_EQ(recovered->canonicalState(lastSeq),
              live.canonicalState(lastSeq));
    EXPECT_EQ(recovered->stateDigest(lastSeq),
              live.stateDigest(lastSeq));
    std::remove(path.c_str());
}

// --- live server (socket smoke) ----------------------------------------

ServerConfig
serverConfig(const std::string &walPath = "")
{
    ServerConfig config;
    config.engine.cluster = smallCluster();
    config.walPath = walPath;
    config.queryThreads = 0; // keep the test single-threaded inside
    return config;
}

TEST(Server, PlaceQueryStatsDepartOverSocket)
{
    PlacementServer server(serverConfig());
    ServeClient client(server.port());

    Request place;
    place.id = 1;
    place.op = Op::Place;
    place.jobs = {job(1, 4), job(2, 8)};
    const Response placed = client.call(place);
    EXPECT_TRUE(placed.ok);
    EXPECT_EQ(placed.id, 1);
    EXPECT_EQ(placed.placed.size() + placed.deferred.size(), 2u);

    Request query;
    query.id = 2;
    query.op = Op::Query;
    query.jobs = {job(50, 2)};
    const Response whatIf = client.call(query);
    ASSERT_TRUE(whatIf.ok);
    ASSERT_EQ(whatIf.queryResults.size(), 1u);
    EXPECT_TRUE(whatIf.queryResults[0].placeable);

    Request stats;
    stats.id = 3;
    stats.op = Op::Stats;
    const Response statsResponse = client.call(stats);
    ASSERT_TRUE(statsResponse.hasStats);
    EXPECT_EQ(statsResponse.stats.seq, 1u);
    EXPECT_EQ(statsResponse.stats.runningJobs,
              static_cast<std::int64_t>(placed.placed.size()));

    // An invalid depart is an error response, not a dead server.
    Request badDepart;
    badDepart.id = 4;
    badDepart.op = Op::Depart;
    badDepart.departs = {JobId(777)};
    const Response bad = client.call(badDepart);
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.rejected);
    EXPECT_FALSE(bad.error.empty());

    Request drain;
    drain.id = 5;
    drain.op = Op::Drain;
    const Response drained = client.call(drain);
    EXPECT_TRUE(drained.ok);
    server.join();
    EXPECT_TRUE(server.finished());
}

TEST(Server, KillRestartRecoversBitIdentically)
{
    const std::string path = tempPath("server_recover.ndjson");
    std::string digestBefore;
    std::uint64_t seqBefore = 0;
    {
        // "Kill": destroy the server without a drain barrier — the WAL
        // alone must carry the state (every event is flushed pre-apply).
        PlacementServer server(serverConfig(path));
        ServeClient client(server.port());
        for (int i = 1; i <= 8; ++i) {
            Request place;
            place.id = i;
            place.op = Op::Place;
            place.jobs = {job(i, 1 + i % 5)};
            EXPECT_TRUE(client.call(place).ok);
        }
        Request depart;
        depart.id = 9;
        depart.op = Op::Depart;
        depart.departs = {JobId(2), JobId(4)};
        EXPECT_TRUE(client.call(depart).ok);

        Request stats;
        stats.id = 10;
        stats.op = Op::Stats;
        const Response statsResponse = client.call(stats);
        ASSERT_TRUE(statsResponse.hasStats);
        digestBefore = statsResponse.stats.digest;
        seqBefore = statsResponse.stats.seq;
        server.stop();
    }

    ServerConfig config = serverConfig(path);
    config.recover = true;
    PlacementServer recovered(config);
    EXPECT_EQ(recovered.seq(), seqBefore);
    ServeClient client(recovered.port());
    Request stats;
    stats.id = 1;
    stats.op = Op::Stats;
    const Response statsResponse = client.call(stats);
    ASSERT_TRUE(statsResponse.hasStats);
    EXPECT_EQ(statsResponse.stats.digest, digestBefore);

    // The recovered server keeps serving (and appending) normally.
    Request place;
    place.id = 2;
    place.op = Op::Place;
    place.jobs = {job(100, 2)};
    EXPECT_TRUE(client.call(place).ok);
    EXPECT_EQ(recovered.seq(), seqBefore + 1);
    std::remove(path.c_str());
}

TEST(Server, RecoverFromTornWalRewritesItClean)
{
    const std::string path = tempPath("server_torn.ndjson");
    {
        PlacementServer server(serverConfig(path));
        ServeClient client(server.port());
        for (int i = 1; i <= 4; ++i) {
            Request place;
            place.id = i;
            place.op = Op::Place;
            place.jobs = {job(i, 2)};
            EXPECT_TRUE(client.call(place).ok);
        }
        server.stop();
    }
    // Tear the tail mid-line, as a kill -9 mid-write would.
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 10u);
    bytes.resize(bytes.size() - 7);
    {
        std::ofstream os(path, std::ios::trunc | std::ios::binary);
        os << bytes;
    }

    ServerConfig config = serverConfig(path);
    config.recover = true;
    PlacementServer recovered(config);
    EXPECT_EQ(recovered.seq(), 3u);
    recovered.stop();
    recovered.join();

    const WalLoad reloaded = loadWal(path);
    EXPECT_FALSE(reloaded.torn);
    EXPECT_EQ(reloaded.events.size(), 3u);
    std::remove(path.c_str());
}

TEST(Server, HeaderMismatchRefusesRecovery)
{
    const std::string path = tempPath("server_mismatch.ndjson");
    {
        PlacementServer server(serverConfig(path));
        server.stop();
    }
    ServerConfig config = serverConfig(path);
    config.recover = true;
    config.engine.cluster.numRacks = 7; // not what the WAL journals
    EXPECT_THROW(PlacementServer{config}, ConfigError);
    std::remove(path.c_str());
}

TEST(Server, MissingWalWithRecoverStartsFresh)
{
    ServerConfig config = serverConfig(tempPath("never_written.ndjson"));
    config.recover = true;
    PlacementServer server(config);
    EXPECT_EQ(server.seq(), 0u);
    server.stop();
    server.join();
    std::remove(config.walPath.c_str());
}

} // namespace
} // namespace serve
} // namespace netpack
