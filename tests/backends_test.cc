/**
 * @file
 * The collective-backend subsystem end-to-end: kind names and volume
 * factors, the registry, ring/rdma hierarchy shapes (chain encoding,
 * one-flow-per-rack, leader validation), traffic matrices and PAT
 * demand, the trace CSV backend column, assignBackends determinism,
 * journal /2 serialization with /1 back-compat (golden fixture replay),
 * the packet-model and exhaustive-oracle fidelity gates, serve WAL
 * recovery of non-PS placements, mixed-trace record → replay-verify
 * zero divergences, and --jobs 1 vs 4 placement bit-identity.
 */

#include <algorithm>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "backends/collective_backend.h"
#include "common/check.h"
#include "core/experiment.h"
#include "journal/journal.h"
#include "journal/record.h"
#include "journal/replayer.h"
#include "journal/serialize.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "placement/baselines.h"
#include "placement/exhaustive.h"
#include "serve/engine.h"
#include "serve/wal.h"
#include "sim/packet_model.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

using backends::CollectiveBackend;

// --- fixtures ----------------------------------------------------------

ClusterTopology
makeTopo(int racks = 2, int servers_per_rack = 4, Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = racks;
    config.serversPerRack = servers_per_rack;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

JobSpec
makeSpec(int id, int gpus, BackendKind backend = BackendKind::PsIna,
         const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 100;
    spec.backend = backend;
    return spec;
}

/** A non-PS placement: leader is worker server 0, spanning both racks. */
Placement
ringPlacement(const ClusterTopology &topo, BackendKind backend,
              ServerId leader = ServerId(0))
{
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.workers[ServerId(1)] = 1;
    p.workers[ServerId(4)] = 2; // rack 1 in the 2x4 topo
    p.workers[ServerId(5)] = 1;
    p.psServer = leader;
    p.backend = backend;
    p.inaRacks = p.allRacks(topo);
    return p;
}

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + "backends_test_" + name;
}

/** Serialize through the compact JsonWriter the journal itself uses. */
template <typename Fn>
std::string
jsonOf(Fn &&write)
{
    std::ostringstream oss;
    obs::JsonWriter json(oss, 0);
    write(json);
    return oss.str();
}

ExperimentConfig
smallConfig()
{
    ExperimentConfig config;
    config.cluster.numRacks = 2;
    config.cluster.serversPerRack = 4;
    config.cluster.gpusPerServer = 4;
    config.cluster.torPatGbps = 200.0;
    config.sim.placementPeriod = 5.0;
    config.placer = "NetPack";
    return config;
}

JobTrace
smallTrace(std::uint64_t seed = 7, int jobs = 24)
{
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 5.0;
    gen.maxGpuDemand = 16;
    gen.meanInterarrival = 2.0;
    gen.durationLogMu = 3.8;
    return generateTrace(gen);
}

// --- kind: names and volume math ---------------------------------------

TEST(BackendKind, NamesRoundTrip)
{
    for (auto kind : {BackendKind::PsIna, BackendKind::RingIna,
                      BackendKind::RdmaIna})
        EXPECT_EQ(backendFromName(backendName(kind)), kind);
    EXPECT_STREQ(backendName(BackendKind::PsIna), "ps_ina");
    EXPECT_STREQ(backendName(BackendKind::RingIna), "ring_ina");
    EXPECT_STREQ(backendName(BackendKind::RdmaIna), "rdma_ina");
    const std::vector<std::string> names = backendNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "ps_ina");
}

TEST(BackendKind, UnknownNameListsValidOnes)
{
    try {
        backendFromName("nccl");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("nccl"), std::string::npos) << what;
        EXPECT_NE(what.find("ps_ina"), std::string::npos) << what;
        EXPECT_NE(what.find("ring_ina"), std::string::npos) << what;
        EXPECT_NE(what.find("rdma_ina"), std::string::npos) << what;
    }
}

TEST(BackendKind, VolumeFactors)
{
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::PsIna, 8), 1.0);
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::RdmaIna, 8), 1.0);
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::RingIna, 4), 1.5);
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::RingIna, 2), 1.0);
    // k <= 1: nothing to exchange on a ring.
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::RingIna, 1), 0.0);
    EXPECT_DOUBLE_EQ(backendVolumeFactor(BackendKind::PsIna, 1), 1.0);
}

// --- registry ----------------------------------------------------------

TEST(BackendRegistry, SingletonsExposeIdentity)
{
    for (auto kind : {BackendKind::PsIna, BackendKind::RingIna,
                      BackendKind::RdmaIna}) {
        const CollectiveBackend &backend = CollectiveBackend::of(kind);
        EXPECT_EQ(backend.kind(), kind);
        EXPECT_STREQ(backend.name(), backendName(kind));
        // Same singleton on every lookup.
        EXPECT_EQ(&backend, &CollectiveBackend::of(kind));
    }
    EXPECT_TRUE(CollectiveBackend::of(BackendKind::PsIna)
                    .usesDedicatedPs());
    EXPECT_FALSE(CollectiveBackend::of(BackendKind::RingIna)
                     .usesDedicatedPs());
    EXPECT_FALSE(CollectiveBackend::of(BackendKind::RdmaIna)
                     .usesDedicatedPs());
    EXPECT_EQ(CollectiveBackend::of(BackendKind::RingIna).algorithm(),
              CollectiveAlgorithm::RingAllReduce);
}

TEST(BackendRegistry, AnalyticStepTimeFollowsTheAlgorithm)
{
    for (auto kind : {BackendKind::PsIna, BackendKind::RingIna,
                      BackendKind::RdmaIna}) {
        const CollectiveBackend &backend = CollectiveBackend::of(kind);
        EXPECT_DOUBLE_EQ(
            backend.analyticStepTime(6, 250.0, 40.0, 0.8),
            collectiveStepTime(backend.algorithm(), 6, 250.0, 40.0, 0.0,
                               0.8));
    }
}

// --- ring hierarchy shape ----------------------------------------------

TEST(RingHierarchy, ChainEncodingOneFlowPerRack)
{
    const ClusterTopology topo = makeTopo();
    const Placement p = ringPlacement(topo, BackendKind::RingIna);
    std::vector<JobHierarchy> trees =
        backends::buildJobHierarchies(topo, JobId(1), p);
    ASSERT_EQ(trees.size(), 1u);
    JobHierarchy &tree = trees.front();
    EXPECT_FALSE(tree.local());
    EXPECT_EQ(tree.workerServerCount(), 4);

    const auto &nodes = tree.nodes();
    // Root is a Ps-kind node at the leader *worker* server.
    ASSERT_FALSE(nodes.empty());
    EXPECT_EQ(nodes[0].kind, HierarchyNode::Kind::Ps);
    EXPECT_EQ(nodes[0].server, ServerId(0));

    // 1 root + 2 ToRs + 3 non-leader worker hops.
    std::size_t switches = 0, workers = 0;
    for (const auto &node : nodes) {
        switches += node.kind == HierarchyNode::Kind::Switch;
        workers += node.kind == HierarchyNode::Kind::Worker;
    }
    EXPECT_EQ(switches, 2u);
    EXPECT_EQ(workers, 3u);
    ASSERT_EQ(nodes.size(), 6u);

    // Rack 1's two servers chain: its ToR has exactly one Worker child,
    // which itself parents the second hop.
    for (const auto &node : nodes) {
        if (node.kind != HierarchyNode::Kind::Switch ||
            node.rack != RackId(1))
            continue;
        std::size_t worker_children = 0;
        for (std::size_t child : node.children)
            worker_children +=
                nodes[child].kind == HierarchyNode::Kind::Worker;
        EXPECT_EQ(worker_children, 1u);
    }

    // With ample PAT, each rack presents exactly one upward flow (a
    // ring never incasts).
    tree.updateFlows(std::vector<Gbps>(
        static_cast<std::size_t>(topo.numRacks()), 1e9));
    EXPECT_EQ(tree.incomingFlowsAtRack(RackId(0)), 2);
    EXPECT_EQ(tree.incomingFlowsAtRack(RackId(1)), 1);
    for (const auto &node : nodes) {
        if (node.kind == HierarchyNode::Kind::Switch) {
            EXPECT_EQ(node.flows, 1);
        }
    }

    // Flow charging: the remote rack's single stream crosses both core
    // links (the inter-rack ring hop), never more.
    std::vector<int> flows(static_cast<std::size_t>(topo.numLinks()), 0);
    tree.accumulateLinkFlows(flows);
    EXPECT_EQ(flows[topo.coreLink(RackId(1)).value], 1);
    EXPECT_EQ(flows[topo.coreLink(RackId(0)).value], 1);
}

TEST(RingHierarchy, SingleServerIsLocal)
{
    const ClusterTopology topo = makeTopo();
    Placement p;
    p.workers[ServerId(2)] = 4;
    p.psServer = ServerId(2);
    p.backend = BackendKind::RingIna;
    const std::vector<JobHierarchy> trees =
        backends::buildJobHierarchies(topo, JobId(1), p);
    ASSERT_EQ(trees.size(), 1u);
    EXPECT_TRUE(trees.front().local());
}

TEST(RingHierarchy, RejectsInvalidPlacements)
{
    const ClusterTopology topo = makeTopo();
    // Leader not among the workers.
    Placement stray = ringPlacement(topo, BackendKind::RingIna);
    stray.psServer = ServerId(7);
    EXPECT_THROW(backends::buildJobHierarchies(topo, JobId(1), stray),
                 ConfigError);
    // Sharded PS placements are a PS-backend concept.
    Placement sharded = ringPlacement(topo, BackendKind::RingIna);
    sharded.extraPsServers.push_back(ServerId(1));
    EXPECT_THROW(backends::buildJobHierarchies(topo, JobId(1), sharded),
                 ConfigError);
}

// --- rdma hierarchy shape ----------------------------------------------

TEST(RdmaHierarchy, StarRootedAtLeaderWorker)
{
    const ClusterTopology topo = makeTopo();
    const Placement p = ringPlacement(topo, BackendKind::RdmaIna);
    std::vector<JobHierarchy> trees =
        backends::buildJobHierarchies(topo, JobId(2), p);
    ASSERT_EQ(trees.size(), 1u);
    JobHierarchy &tree = trees.front();
    const auto &nodes = tree.nodes();
    ASSERT_FALSE(nodes.empty());
    EXPECT_EQ(nodes[0].kind, HierarchyNode::Kind::Ps);
    EXPECT_EQ(nodes[0].server, ServerId(0));

    // The PS star: every worker server hangs directly off its ToR.
    tree.updateFlows(std::vector<Gbps>(
        static_cast<std::size_t>(topo.numRacks()), 1e9));
    for (const auto &node : nodes) {
        if (node.kind == HierarchyNode::Kind::Worker) {
            EXPECT_EQ(nodes[node.parent].kind,
                      HierarchyNode::Kind::Switch);
        }
    }

    Placement stray = p;
    stray.psServer = ServerId(7);
    EXPECT_THROW(backends::buildJobHierarchies(topo, JobId(2), stray),
                 ConfigError);
    Placement sharded = p;
    sharded.extraPsServers.push_back(ServerId(1));
    EXPECT_THROW(backends::buildJobHierarchies(topo, JobId(2), sharded),
                 ConfigError);
}

// --- traffic matrix / PAT demand ---------------------------------------

TEST(BackendTraffic, MatrixAndPatDemandSpanThePlacement)
{
    const ClusterTopology topo = makeTopo();
    for (auto kind : {BackendKind::PsIna, BackendKind::RingIna,
                      BackendKind::RdmaIna}) {
        SCOPED_TRACE(backendName(kind));
        const CollectiveBackend &backend = CollectiveBackend::of(kind);
        Placement p = ringPlacement(topo, kind);
        if (kind == BackendKind::PsIna)
            p.psServer = ServerId(2); // dedicated PS off the worker set

        const std::map<LinkId, MBytes> matrix =
            backend.trafficMatrix(topo, p, 100.0);
        EXPECT_FALSE(matrix.empty());
        double total = 0.0;
        for (const auto &[link, mb] : matrix) {
            EXPECT_GE(link.value, 0);
            EXPECT_LT(link.value, topo.numLinks());
            EXPECT_GT(mb, 0.0);
            total += mb;
        }
        EXPECT_GT(total, 0.0);

        const std::set<RackId> racks = backend.patDemandRacks(topo, p);
        EXPECT_EQ(racks, p.allRacks(topo));
    }

    // A single-server job moves nothing and asks no PAT.
    Placement local;
    local.workers[ServerId(3)] = 4;
    local.psServer = ServerId(3);
    local.backend = BackendKind::RingIna;
    const CollectiveBackend &ring =
        CollectiveBackend::of(BackendKind::RingIna);
    EXPECT_TRUE(ring.trafficMatrix(topo, local, 100.0).empty());
    EXPECT_TRUE(ring.patDemandRacks(topo, local).empty());
}

// --- trace CSV ---------------------------------------------------------

TEST(BackendTrace, CsvEmitsBackendColumnOnlyWhenMixed)
{
    const JobTrace pure = smallTrace(3, 6);
    std::ostringstream pure_csv;
    pure.saveCsv(pure_csv);
    EXPECT_EQ(pure_csv.str().find("backend"), std::string::npos);

    const JobTrace mixed = assignBackends(pure, 0.4, 0.3, 11);
    std::ostringstream mixed_csv;
    mixed.saveCsv(mixed_csv);
    EXPECT_NE(mixed_csv.str().find(",backend"), std::string::npos);

    std::istringstream is(mixed_csv.str());
    const JobTrace back = JobTrace::loadCsv(is);
    ASSERT_EQ(back.jobs().size(), mixed.jobs().size());
    for (std::size_t i = 0; i < back.jobs().size(); ++i)
        EXPECT_EQ(back.jobs()[i].backend, mixed.jobs()[i].backend);

    // Round-trip is byte-identical.
    std::ostringstream again;
    back.saveCsv(again);
    EXPECT_EQ(again.str(), mixed_csv.str());
}

TEST(BackendTrace, UnknownBackendNamesTheLineAndValidNames)
{
    std::istringstream is("id,model,gpus,submit_time,iterations,value,"
                          "backend\n"
                          "0,VGG16,4,0.000000,100,1.000000,nccl\n");
    try {
        JobTrace::loadCsv(is);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trace line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("nccl"), std::string::npos) << what;
        EXPECT_NE(what.find("ring_ina"), std::string::npos) << what;
    }
}

TEST(BackendTrace, AssignBackendsIsSeededAndLeavesSpecsIntact)
{
    const JobTrace base = smallTrace(5, 40);
    const JobTrace a = assignBackends(base, 0.3, 0.3, 17);
    const JobTrace b = assignBackends(base, 0.3, 0.3, 17);
    ASSERT_EQ(a.jobs().size(), base.jobs().size());
    std::size_t ring = 0, rdma = 0;
    for (std::size_t i = 0; i < a.jobs().size(); ++i) {
        EXPECT_EQ(a.jobs()[i].backend, b.jobs()[i].backend);
        // Only the backend changes; everything else is untouched.
        EXPECT_EQ(a.jobs()[i].id, base.jobs()[i].id);
        EXPECT_EQ(a.jobs()[i].gpuDemand, base.jobs()[i].gpuDemand);
        EXPECT_EQ(a.jobs()[i].submitTime, base.jobs()[i].submitTime);
        ring += a.jobs()[i].backend == BackendKind::RingIna;
        rdma += a.jobs()[i].backend == BackendKind::RdmaIna;
    }
    // 40 draws at 30%/30%: both kinds show up.
    EXPECT_GT(ring, 0u);
    EXPECT_GT(rdma, 0u);

    // Zero fractions are the identity.
    const JobTrace none = assignBackends(base, 0.0, 0.0, 17);
    for (const JobSpec &spec : none.jobs())
        EXPECT_EQ(spec.backend, BackendKind::PsIna);
    EXPECT_THROW(assignBackends(base, 0.8, 0.3, 1), ConfigError);
}

// --- journal serialization ---------------------------------------------

TEST(BackendJournal, FieldEmittedOnlyForNonDefaultBackends)
{
    const JobSpec ps = makeSpec(1, 4);
    const JobSpec ring = makeSpec(2, 4, BackendKind::RingIna);
    const std::string ps_json = jsonOf(
        [&](obs::JsonWriter &json) { journal::writeJobSpec(json, ps); });
    const std::string ring_json = jsonOf([&](obs::JsonWriter &json) {
        journal::writeJobSpec(json, ring);
    });
    // Absent for the default: /1 files and pure-PS runs stay
    // byte-identical.
    EXPECT_EQ(ps_json.find("backend"), std::string::npos);
    EXPECT_NE(ring_json.find("ring_ina"), std::string::npos);
    EXPECT_EQ(journal::readJobSpec(obs::parseJson(ring_json)).backend,
              BackendKind::RingIna);
    EXPECT_EQ(journal::readJobSpec(obs::parseJson(ps_json)).backend,
              BackendKind::PsIna);

    const ClusterTopology topo = makeTopo();
    const Placement placement =
        ringPlacement(topo, BackendKind::RdmaIna);
    const std::string placement_json = jsonOf([&](obs::JsonWriter &json) {
        journal::writePlacement(json, placement);
    });
    EXPECT_NE(placement_json.find("rdma_ina"), std::string::npos);
    const Placement back =
        journal::readPlacement(obs::parseJson(placement_json));
    EXPECT_EQ(back.backend, BackendKind::RdmaIna);
    EXPECT_EQ(placement_json, jsonOf([&](obs::JsonWriter &json) {
                  journal::writePlacement(json, back);
              }));
}

TEST(BackendJournal, GoldenV1JournalStillVerifies)
{
    // Recorded by the /1 writer before backends existed; the /2 reader
    // and replayer must accept it and reproduce it divergence-free.
    const std::string path =
        std::string(NETPACK_TEST_DATA_DIR) + "/golden_journal_v1.jsonl";
    journal::JournalReader reader(path);
    EXPECT_GT(reader.header().trace.size(), 0u);
    for (const JobSpec &spec : reader.header().trace)
        EXPECT_EQ(spec.backend, BackendKind::PsIna);

    journal::Replayer replayer(path);
    ASSERT_TRUE(replayer.complete());
    const journal::VerifyResult result = replayer.verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");
    EXPECT_GT(result.eventsCompared, 0u);
}

// --- fidelity gates ----------------------------------------------------

TEST(BackendGates, PacketModelAcceptsOnlyPsIna)
{
    const ClusterTopology topo = makeTopo();
    PacketNetworkModel model(topo);
    Placement p = ringPlacement(topo, BackendKind::RingIna);
    EXPECT_THROW(model.jobStarted(
                     makeSpec(0, 6, BackendKind::RingIna), p, 0.0),
                 ConfigError);
}

TEST(BackendGates, ExhaustiveOracleEnumeratesPsOnly)
{
    const ClusterTopology topo = makeTopo(1, 2);
    GpuLedger gpus(topo);
    const ExhaustiveSolver solver(1000);
    EXPECT_THROW(
        solver.solve({makeSpec(0, 2, BackendKind::RdmaIna)}, topo, gpus),
        ConfigError);
    EXPECT_NO_THROW(solver.solve({makeSpec(0, 2)}, topo, gpus));
}

// --- placement ---------------------------------------------------------

TEST(BackendPlacement, NetPackPlacesNonPsJobsWithWorkerLeader)
{
    const ClusterTopology topo = makeTopo();
    for (auto kind : {BackendKind::RingIna, BackendKind::RdmaIna}) {
        SCOPED_TRACE(backendName(kind));
        GpuLedger gpus(topo);
        const auto placer = makePlacerByName("NetPack");
        // 24 GPUs forces a multi-rack spread on the 2x4x4 cluster.
        const BatchResult result =
            placer->placeBatch({makeSpec(0, 24, kind)}, topo, gpus, {});
        ASSERT_EQ(result.placed.size(), 1u);
        const Placement &p = result.placed.front().placement;
        EXPECT_EQ(p.backend, kind);
        // The leader rides on a worker; no dedicated PS is allocated.
        EXPECT_GT(p.workers.count(p.psServer), 0u);
        EXPECT_TRUE(p.extraPsServers.empty());
        EXPECT_EQ(p.allRacks(topo).size(), 2u);
        EXPECT_EQ(p.inaRacks, p.allRacks(topo));
        EXPECT_EQ(p.totalWorkers(), 24);
    }
}

TEST(BackendPlacement, HarnessStampsTheBackendOnEveryPlacer)
{
    const ClusterTopology topo = makeTopo();
    for (const std::string &name :
         {std::string("NetPack"), std::string("GB"), std::string("LF")}) {
        SCOPED_TRACE(name);
        GpuLedger gpus(topo);
        const auto placer = makePlacerByName(name);
        const BatchResult result = placer->placeBatch(
            {makeSpec(0, 4, BackendKind::RingIna)}, topo, gpus, {});
        ASSERT_EQ(result.placed.size(), 1u);
        EXPECT_EQ(result.placed.front().placement.backend,
                  BackendKind::RingIna);
    }
}

TEST(BackendPlacement, MixedBatchBitIdenticalForAnyJobsCount)
{
    const ClusterTopology topo = makeTopo(3, 4);
    const JobTrace mixed = assignBackends(smallTrace(9, 10), 0.3, 0.3, 5);

    auto placeAll = [&](int jobs) {
        GpuLedger gpus(topo);
        const auto placer = makePlacerByName("NetPack", 0, jobs);
        const BatchResult result =
            placer->placeBatch(mixed.jobs(), topo, gpus, {});
        std::string canon;
        for (const PlacedJob &placed : result.placed)
            canon += jsonOf([&](obs::JsonWriter &json) {
                journal::writePlacement(json, placed.placement);
            });
        for (JobId deferred : result.deferred)
            canon += "D" + std::to_string(deferred.value);
        return canon;
    };
    EXPECT_EQ(placeAll(1), placeAll(4));
}

TEST(BackendPlacement, AcceptCountsPerBackendCounter)
{
    obs::setMetricsEnabled(true);
    obs::Registry::instance().reset();
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    const auto placer = makePlacerByName("NetPack");
    placer->placeBatch({makeSpec(0, 4, BackendKind::RingIna),
                        makeSpec(1, 4, BackendKind::RdmaIna),
                        makeSpec(2, 4)},
                       topo, gpus, {});
    const auto snap = obs::snapshot();
    obs::Registry::instance().reset();
    obs::setMetricsEnabled(false);
    EXPECT_EQ(snap.counters.at("placement.backend.ring_ina"), 1);
    EXPECT_EQ(snap.counters.at("placement.backend.rdma_ina"), 1);
    EXPECT_EQ(snap.counters.at("placement.backend.ps_ina"), 1);
}

// --- end to end --------------------------------------------------------

TEST(BackendEndToEnd, MixedTraceRecordsAndVerifiesZeroDivergences)
{
    const std::string path = tempPath("mixed_journal.jsonl");
    const ExperimentConfig config = smallConfig();
    const JobTrace mixed = assignBackends(smallTrace(), 0.3, 0.3, 23);

    journal::RecordOptions options;
    options.path = path;
    options.label = "mixed-backend";
    const journal::RecordOutcome outcome =
        journal::recordRun(config, mixed, options);
    EXPECT_GT(outcome.eventsWritten, mixed.jobs().size());

    // Every job ran under its requested backend.
    std::size_t non_ps = 0;
    ASSERT_EQ(outcome.metrics.records.size(), mixed.jobs().size());
    for (const JobRecord &record : outcome.metrics.records) {
        EXPECT_EQ(record.placement.backend, record.spec.backend);
        non_ps += record.spec.backend != BackendKind::PsIna;
    }
    EXPECT_GT(non_ps, 0u);

    journal::Replayer replayer(path);
    ASSERT_TRUE(replayer.complete());
    const journal::VerifyResult result = replayer.verify();
    EXPECT_TRUE(result.ok) << (result.divergence
                                   ? result.divergence->describe()
                                   : "no divergence reported");
    EXPECT_GT(result.eventsCompared, 0u);
    std::remove(path.c_str());
}

TEST(BackendEndToEnd, ServeWalRecoversNonPsPlacements)
{
    serve::EngineConfig config;
    config.cluster.numRacks = 2;
    config.cluster.serversPerRack = 4;
    config.cluster.gpusPerServer = 4;
    const std::string path = tempPath("serve_backend.ndjson");

    serve::WalHeader header;
    header.cluster = config.cluster;
    serve::PlacementEngine live(config);
    {
        serve::WalWriter writer(path, header);
        std::uint64_t seq = 0;
        const JobSpec ring = makeSpec(1, 24, BackendKind::RingIna);
        const JobSpec ps = makeSpec(2, 4);
        writer.appendPlace(++seq, {ring});
        const BatchResult placed = live.applyPlace({ring});
        ASSERT_EQ(placed.placed.size(), 1u);
        EXPECT_EQ(placed.placed.front().placement.backend,
                  BackendKind::RingIna);
        writer.appendPlace(++seq, {ps});
        live.applyPlace({ps});
    }

    std::uint64_t lastSeq = 0;
    const serve::WalLoad load = serve::loadWal(path);
    EXPECT_FALSE(load.torn);
    const std::unique_ptr<serve::PlacementEngine> recovered =
        serve::recoverEngine(load, lastSeq);
    EXPECT_EQ(lastSeq, 2u);
    const std::string state = live.canonicalState(lastSeq);
    EXPECT_EQ(recovered->canonicalState(lastSeq), state);
    EXPECT_EQ(recovered->stateDigest(lastSeq),
              live.stateDigest(lastSeq));
    // The recovered state carries the backend, not a ps_ina default.
    EXPECT_NE(state.find("ring_ina"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace netpack
