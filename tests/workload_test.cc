/**
 * @file
 * Unit tests for the workload layer: model zoo, job/placement helpers,
 * trace container + CSV round-trip, and the trace generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "workload/job.h"
#include "workload/models.h"
#include "workload/trace.h"
#include "workload/trace_gen.h"

namespace netpack {
namespace {

ClusterTopology
tinyTopo()
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    return ClusterTopology(config);
}

// ------------------------------------------------------------- modelzoo

TEST(ModelZoo, HasTheSixEvaluationModels)
{
    const auto &zoo = ModelZoo::all();
    ASSERT_EQ(zoo.size(), 6u);
    for (const char *name : {"AlexNet", "VGG11", "VGG16", "VGG19",
                             "ResNet50", "ResNet101"}) {
        EXPECT_TRUE(ModelZoo::contains(name)) << name;
    }
}

TEST(ModelZoo, LookupIsCaseInsensitive)
{
    EXPECT_EQ(ModelZoo::byName("vgg16").name, "VGG16");
    EXPECT_EQ(ModelZoo::byName("RESNET50").name, "ResNet50");
}

TEST(ModelZoo, UnknownModelThrows)
{
    EXPECT_THROW(ModelZoo::byName("GPT4"), ConfigError);
    EXPECT_FALSE(ModelZoo::contains("GPT4"));
}

TEST(ModelZoo, AllProfilesArePositive)
{
    for (const auto &model : ModelZoo::all()) {
        EXPECT_GT(model.modelSizeMb, 0.0) << model.name;
        EXPECT_GT(model.computeTimePerIter, 0.0) << model.name;
        EXPECT_DOUBLE_EQ(model.commVolumePerIter(), model.modelSizeMb);
    }
}

TEST(ModelZoo, VggIsMoreCommIntensiveThanResNet)
{
    // The paper calls VGG16 communication-intensive and ResNet50
    // computation-intensive; the zoo must preserve that ordering.
    const double vgg =
        ModelZoo::commIntensity(ModelZoo::byName("VGG16"), 50.0);
    const double resnet =
        ModelZoo::commIntensity(ModelZoo::byName("ResNet50"), 50.0);
    EXPECT_GT(vgg, resnet);
}

// ------------------------------------------------------------ placement

TEST(PlacementStruct, SingleServerDetection)
{
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    EXPECT_TRUE(p.singleServer());
    EXPECT_EQ(p.totalWorkers(), 4);

    p.psServer = ServerId(1);
    EXPECT_FALSE(p.singleServer());
}

TEST(PlacementStruct, RackQueries)
{
    const ClusterTopology topo = tinyTopo();
    Placement p;
    p.workers[ServerId(0)] = 2; // rack 0
    p.workers[ServerId(2)] = 2; // rack 1
    p.psServer = ServerId(1);   // rack 0
    EXPECT_EQ(p.workerRacks(topo).size(), 2u);
    EXPECT_EQ(p.allRacks(topo).size(), 2u);
    EXPECT_FALSE(p.singleRack(topo));

    Placement q;
    q.workers[ServerId(0)] = 1;
    q.workers[ServerId(1)] = 1;
    q.psServer = ServerId(1);
    EXPECT_TRUE(q.singleRack(topo));
}

TEST(PlacementStruct, ValidateCatchesMissingPs)
{
    Placement p;
    p.workers[ServerId(0)] = 1;
    p.workers[ServerId(1)] = 1;
    EXPECT_THROW(p.validate(), InternalError);
    p.psServer = ServerId(0);
    EXPECT_NO_THROW(p.validate());
}

TEST(PlacementStruct, ValidateCatchesEmptyWorkers)
{
    Placement p;
    EXPECT_THROW(p.validate(), InternalError);
}

TEST(IterationTimeTest, SingleServerSkipsCommunication)
{
    const ModelProfile &model = ModelZoo::byName("VGG16");
    JobSpec spec;
    spec.id = JobId(0);
    spec.gpuDemand = 4;
    Placement p;
    p.workers[ServerId(0)] = 4;
    p.psServer = ServerId(0);
    EXPECT_DOUBLE_EQ(iterationTime(spec, model, p, 10.0),
                     model.computeTimePerIter);
}

TEST(IterationTimeTest, MultiServerAddsTransfer)
{
    const ModelProfile &model = ModelZoo::byName("ResNet50");
    JobSpec spec;
    spec.id = JobId(0);
    spec.gpuDemand = 2;
    Placement p;
    p.workers[ServerId(0)] = 1;
    p.workers[ServerId(1)] = 1;
    p.psServer = ServerId(0);
    const Seconds expected =
        model.computeTimePerIter +
        units::transferTime(model.modelSizeMb, 10.0);
    EXPECT_NEAR(iterationTime(spec, model, p, 10.0), expected, 1e-12);
}

TEST(IterationTimeTest, ZeroThroughputIsInfinite)
{
    const ModelProfile &model = ModelZoo::byName("ResNet50");
    JobSpec spec;
    spec.id = JobId(0);
    spec.gpuDemand = 2;
    Placement p;
    p.workers[ServerId(0)] = 1;
    p.workers[ServerId(1)] = 1;
    p.psServer = ServerId(0);
    EXPECT_TRUE(std::isinf(iterationTime(spec, model, p, 0.0)));
}

// ---------------------------------------------------------------- trace

TEST(JobTraceTest, SortsBySubmitTimeAndReIds)
{
    std::vector<JobSpec> jobs(3);
    jobs[0].submitTime = 30.0;
    jobs[0].modelName = "VGG16";
    jobs[1].submitTime = 10.0;
    jobs[1].modelName = "AlexNet";
    jobs[2].submitTime = 20.0;
    jobs[2].modelName = "ResNet50";
    const JobTrace trace(std::move(jobs));
    EXPECT_EQ(trace.at(0).modelName, "AlexNet");
    EXPECT_EQ(trace.at(1).modelName, "ResNet50");
    EXPECT_EQ(trace.at(2).modelName, "VGG16");
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace.at(i).id.value, static_cast<int>(i));
}

TEST(JobTraceTest, DemandAggregates)
{
    std::vector<JobSpec> jobs(3);
    for (auto &j : jobs)
        j.modelName = "VGG16";
    jobs[0].gpuDemand = 1;
    jobs[1].gpuDemand = 8;
    jobs[2].gpuDemand = 3;
    const JobTrace trace(std::move(jobs));
    EXPECT_EQ(trace.totalGpuDemand(), 12);
    EXPECT_EQ(trace.maxGpuDemand(), 8);
}

TEST(JobTraceTest, PrefixKeepsEarliest)
{
    std::vector<JobSpec> jobs(5);
    for (int i = 0; i < 5; ++i) {
        jobs[static_cast<std::size_t>(i)].submitTime = i;
        jobs[static_cast<std::size_t>(i)].modelName = "VGG16";
    }
    const JobTrace trace(std::move(jobs));
    const JobTrace head = trace.prefix(2);
    EXPECT_EQ(head.size(), 2u);
    EXPECT_DOUBLE_EQ(head.at(1).submitTime, 1.0);
    EXPECT_EQ(trace.prefix(99).size(), 5u);
}

TEST(JobTraceTest, CsvRoundTrip)
{
    TraceGenConfig config;
    config.numJobs = 50;
    config.seed = 99;
    const JobTrace original = generateTrace(config);

    std::stringstream buffer;
    original.saveCsv(buffer);
    const JobTrace loaded = JobTrace::loadCsv(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.at(i).modelName, original.at(i).modelName);
        EXPECT_EQ(loaded.at(i).gpuDemand, original.at(i).gpuDemand);
        EXPECT_NEAR(loaded.at(i).submitTime, original.at(i).submitTime,
                    1e-5);
        EXPECT_EQ(loaded.at(i).iterations, original.at(i).iterations);
    }
}

TEST(JobTraceTest, LoadRejectsMalformedRows)
{
    std::stringstream bad1("id,model,gpus,submit_time,iterations,value\n"
                           "0,VGG16,4\n");
    EXPECT_THROW(JobTrace::loadCsv(bad1), ConfigError);

    std::stringstream bad2("0,NotAModel,4,0.0,100,1.0\n");
    EXPECT_THROW(JobTrace::loadCsv(bad2), ConfigError);

    std::stringstream bad3("0,VGG16,0,0.0,100,1.0\n");
    EXPECT_THROW(JobTrace::loadCsv(bad3), ConfigError);

    std::stringstream bad4("0,VGG16,4,0.0,abc,1.0\n");
    EXPECT_THROW(JobTrace::loadCsv(bad4), ConfigError);
}

TEST(JobTraceTest, LoadAcceptsBlankLinesAndHeader)
{
    std::stringstream ok("id,model,gpus,submit_time,iterations,value\n"
                         "\n"
                         "0,VGG16,4,1.5,100,1.0\n"
                         "\n");
    const JobTrace trace = JobTrace::loadCsv(ok);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.at(0).gpuDemand, 4);
}

// ------------------------------------------------------------ generator

TEST(TraceGen, DeterministicForSeed)
{
    TraceGenConfig config;
    config.numJobs = 100;
    config.seed = 5;
    const JobTrace a = generateTrace(config);
    const JobTrace b = generateTrace(config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).gpuDemand, b.at(i).gpuDemand);
        EXPECT_EQ(a.at(i).modelName, b.at(i).modelName);
        EXPECT_DOUBLE_EQ(a.at(i).submitTime, b.at(i).submitTime);
    }
}

TEST(TraceGen, SeedsProduceDifferentTraces)
{
    TraceGenConfig config;
    config.numJobs = 100;
    config.seed = 1;
    const JobTrace a = generateTrace(config);
    config.seed = 2;
    const JobTrace b = generateTrace(config);
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += a.at(i).gpuDemand != b.at(i).gpuDemand;
    EXPECT_GT(differing, 10);
}

TEST(TraceGen, PhillyDemandsArePowersOfTwo)
{
    TraceGenConfig config;
    config.numJobs = 500;
    config.distribution = DemandDistribution::Philly;
    const JobTrace trace = generateTrace(config);
    for (const auto &job : trace.jobs()) {
        const int d = job.gpuDemand;
        EXPECT_EQ(d & (d - 1), 0) << "demand " << d
                                  << " is not a power of two";
        EXPECT_LE(d, config.maxGpuDemand);
    }
}

TEST(TraceGen, PhillyIsDominatedBySmallJobs)
{
    TraceGenConfig config;
    config.numJobs = 2000;
    config.distribution = DemandDistribution::Philly;
    const JobTrace trace = generateTrace(config);
    int ones = 0;
    for (const auto &job : trace.jobs())
        ones += job.gpuDemand == 1;
    // The published distribution puts ~47% of jobs at one GPU.
    EXPECT_GT(ones, 2000 * 35 / 100);
    EXPECT_LT(ones, 2000 * 60 / 100);
}

/** Parameterized over the three demand families (Figures 7-8 traces). */
class TraceGenFamilyTest
    : public ::testing::TestWithParam<DemandDistribution>
{
};

TEST_P(TraceGenFamilyTest, DemandsWithinBoundsAndModelsKnown)
{
    TraceGenConfig config;
    config.numJobs = 300;
    config.distribution = GetParam();
    config.maxGpuDemand = 16;
    const JobTrace trace = generateTrace(config);
    ASSERT_EQ(trace.size(), 300u);
    for (const auto &job : trace.jobs()) {
        EXPECT_GE(job.gpuDemand, 1);
        EXPECT_LE(job.gpuDemand, 16);
        EXPECT_TRUE(ModelZoo::contains(job.modelName));
        EXPECT_GE(job.iterations, 1);
        EXPECT_GE(job.submitTime, 0.0);
    }
}

TEST_P(TraceGenFamilyTest, ArrivalsAreMonotone)
{
    TraceGenConfig config;
    config.numJobs = 200;
    config.distribution = GetParam();
    const JobTrace trace = generateTrace(config);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_LE(trace.at(i - 1).submitTime, trace.at(i).submitTime);
}

TEST_P(TraceGenFamilyTest, MeanInterarrivalRoughlyMatches)
{
    TraceGenConfig config;
    config.numJobs = 3000;
    config.meanInterarrival = 12.0;
    config.distribution = GetParam();
    const JobTrace trace = generateTrace(config);
    const double span = trace.at(trace.size() - 1).submitTime;
    EXPECT_NEAR(span / static_cast<double>(trace.size()), 12.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Families, TraceGenFamilyTest,
                         ::testing::Values(DemandDistribution::Philly,
                                           DemandDistribution::Poisson,
                                           DemandDistribution::Normal));

TEST(TraceGen, PoissonMeanIsRespected)
{
    TraceGenConfig config;
    config.numJobs = 5000;
    config.distribution = DemandDistribution::Poisson;
    config.demandMean = 4.0;
    config.maxGpuDemand = 64;
    const JobTrace trace = generateTrace(config);
    RunningStats stats;
    for (const auto &job : trace.jobs())
        stats.add(job.gpuDemand);
    // Clamping to >= 1 pulls the mean up slightly.
    EXPECT_NEAR(stats.mean(), 4.0, 0.3);
}

TEST(TraceGen, DistributionNames)
{
    EXPECT_STREQ(demandDistributionName(DemandDistribution::Philly),
                 "Real");
    EXPECT_STREQ(demandDistributionName(DemandDistribution::Poisson),
                 "Poisson");
    EXPECT_STREQ(demandDistributionName(DemandDistribution::Normal),
                 "Normal");
}

TEST(TraceGen, InvalidConfigsRejected)
{
    TraceGenConfig config;
    config.numJobs = 0;
    EXPECT_THROW(generateTrace(config), ConfigError);
    config.numJobs = 10;
    config.meanInterarrival = 0.0;
    EXPECT_THROW(generateTrace(config), ConfigError);
    config.meanInterarrival = 1.0;
    EXPECT_THROW(generateTrace(config, 0.0), ConfigError);
}

TEST(TraceGen, CommIntensiveModelsGetFewerIterationsPerSecond)
{
    // A VGG16 job and an AlexNet job of equal wall-clock duration should
    // translate into different iteration counts (AlexNet iterates much
    // faster), confirming duration→iterations conversion uses the model.
    TraceGenConfig config;
    config.numJobs = 4000;
    config.seed = 3;
    const JobTrace trace = generateTrace(config);
    RunningStats vgg, alex;
    for (const auto &job : trace.jobs()) {
        if (job.gpuDemand == 1)
            continue; // single-GPU jobs skip the transfer term
        if (job.modelName == "VGG16")
            vgg.add(static_cast<double>(job.iterations));
        if (job.modelName == "AlexNet")
            alex.add(static_cast<double>(job.iterations));
    }
    ASSERT_GT(vgg.count(), 50u);
    ASSERT_GT(alex.count(), 50u);
    EXPECT_GT(alex.mean(), vgg.mean());
}

} // namespace
} // namespace netpack
