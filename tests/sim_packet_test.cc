/**
 * @file
 * Tests for the packet-level (testbed stand-in) network model: AIMD
 * convergence, aggregator-pool sharing, statistical vs synchronous INA
 * semantics, aggregation-ratio accounting, and the cruise optimization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "sim/packet_model.h"

namespace netpack {
namespace {

ClusterConfig
testbedCluster(Gbps pat = 400.0)
{
    // Five servers in one rack, like the paper's testbed.
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 5;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    config.rtt = 50e-6;
    return config;
}

JobSpec
makeSpec(int id, int gpus, std::int64_t iterations,
         const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = iterations;
    return spec;
}

Placement
twoWorkerPlacement(int w1 = 0, int w2 = 1, int ps = 2, bool ina = true)
{
    Placement p;
    p.workers[ServerId(w1)] = 2;
    p.workers[ServerId(w2)] = 2;
    p.psServer = ServerId(ps);
    if (ina)
        p.inaRacks = {RackId(0)};
    return p;
}

TEST(PacketModel, LocalJobFinishesAnalytically)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    Placement p;
    p.workers[ServerId(0)] = 2;
    p.psServer = ServerId(0);
    model.jobStarted(makeSpec(0, 2, 1000, "ResNet50"), p, 0.0);

    const double expected =
        1000.0 * ModelZoo::byName("ResNet50").computeTimePerIter;
    std::vector<JobId> completed;
    const Seconds t = model.advance(0.0, 1e9, completed);
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_NEAR(t, expected, expected * 0.02);
}

TEST(PacketModel, SingleNetworkJobApproachesLinkRate)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 200, "VGG16"),
                     twoWorkerPlacement(), 0.0);

    // Let AIMD warm up, then check the measured rate is near capacity.
    std::vector<JobId> completed;
    model.advance(0.0, 0.5, completed);
    if (completed.empty()) {
        const Gbps rate = model.currentRate(JobId(0));
        EXPECT_GT(rate, 60.0);
        EXPECT_LE(rate, 100.0 + 1e-6);
    }
}

TEST(PacketModel, JctCloseToFlowLevelPrediction)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    const auto spec = makeSpec(0, 4, 100, "VGG16");
    model.jobStarted(spec, twoWorkerPlacement(), 0.0);

    std::vector<JobId> completed;
    Seconds now = 0.0;
    while (completed.empty())
        now = model.advance(now, now + 10.0, completed);

    const ModelProfile &m = ModelZoo::byName("VGG16");
    const double ideal =
        100.0 * (m.computeTimePerIter +
                 units::transferTime(m.modelSizeMb, 100.0));
    // AIMD sawtooth and ramp-up cost something, but the packet JCT must
    // land within ~35% of the fluid prediction.
    EXPECT_GT(now, ideal * 0.95);
    EXPECT_LT(now, ideal * 1.35);
}

TEST(PacketModel, TwoJobsShareTheBottleneckFairly)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    // Both jobs' PS on server 4: its access link is the shared choke.
    model.jobStarted(makeSpec(0, 4, 100000, "VGG16"),
                     twoWorkerPlacement(0, 1, 4), 0.0);
    model.jobStarted(makeSpec(1, 4, 100000, "VGG16"),
                     twoWorkerPlacement(2, 3, 4), 0.0);

    std::vector<JobId> completed;
    model.advance(0.0, 0.8, completed);
    ASSERT_TRUE(completed.empty());
    const Gbps r0 = model.currentRate(JobId(0));
    const Gbps r1 = model.currentRate(JobId(1));
    // Max-min fair share of the 100 Gbps PS link is 50/50 (merged flows).
    EXPECT_NEAR(r0, r1, 15.0);
    EXPECT_NEAR(r0 + r1, 100.0, 25.0);
}

TEST(PacketModel, AggregationRatioTracksPatRatio)
{
    // Figure 14a: one job, 2 workers + PS, throughput pinned at
    // 10 Gbps (as in the paper), PAT swept as a fraction of it; the
    // measured ratio must sit near y = x.
    for (double x : {0.25, 0.5, 0.75, 1.0}) {
        ClusterConfig cluster = testbedCluster();
        const Gbps job_rate = 10.0;
        cluster.torPatGbps = x * job_rate;
        const ClusterTopology topo(cluster);
        PacketModelConfig model_config;
        model_config.maxRate = job_rate;
        PacketNetworkModel model(topo, model_config);
        model.jobStarted(makeSpec(0, 4, 60, "VGG16"),
                         twoWorkerPlacement(), 0.0);
        std::vector<JobId> completed;
        Seconds now = 0.0;
        while (completed.empty() && now < 60.0)
            now = model.advance(now, now + 5.0, completed);
        const double ratio =
            model.aggregationCounters(JobId(0)).ratio();
        EXPECT_NEAR(ratio, x, 0.15) << "PAT ratio " << x;
    }
}

TEST(PacketModel, ZeroPatFallsBackEntirelyToPs)
{
    const ClusterTopology topo(testbedCluster(0.0));
    PacketNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 50, "VGG16"), twoWorkerPlacement(),
                     0.0);
    std::vector<JobId> completed;
    Seconds now = 0.0;
    while (completed.empty() && now < 120.0)
        now = model.advance(now, now + 5.0, completed);
    ASSERT_FALSE(completed.empty()) << "job starved without INA";
    EXPECT_NEAR(model.aggregationCounters(JobId(0)).ratio(), 0.0, 0.02);
}

TEST(PacketModel, StatisticalBeatsSynchronousUnderScarceMemory)
{
    // The Figure-2 property: with two phase-interleaving jobs and a pool
    // that covers only one job's demand, statistical INA multiplexes the
    // idle phases while synchronous INA pins each job to half a region.
    const auto run = [&](bool synchronous) {
        ClusterConfig cluster = testbedCluster(60.0);
        const ClusterTopology topo(cluster);
        PacketModelConfig config;
        config.synchronousIna = synchronous;
        PacketNetworkModel model(topo);
        PacketNetworkModel sync_model(topo, config);
        PacketNetworkModel &m = synchronous ? sync_model : model;
        m.jobStarted(makeSpec(0, 4, 60, "VGG16"),
                     twoWorkerPlacement(0, 1, 4), 0.0);
        m.jobStarted(makeSpec(1, 4, 60, "VGG16"),
                     twoWorkerPlacement(2, 3, 4), 0.0);
        std::vector<JobId> completed;
        Seconds now = 0.0;
        int done = 0;
        while (done < 2 && now < 300.0) {
            now = m.advance(now, now + 5.0, completed);
            for (JobId id : completed) {
                m.jobFinished(id, now);
                ++done;
            }
        }
        EXPECT_EQ(done, 2);
        return now;
    };
    const Seconds statistical = run(false);
    const Seconds synchronous = run(true);
    EXPECT_LT(statistical, synchronous * 1.02)
        << "statistical INA should not lose to synchronous";
}

TEST(PacketModel, SynchronousJobCappedByRegion)
{
    // One job, PAT 20 Gbps, synchronous mode: the send rate can never
    // exceed the region even though the link has 100 Gbps.
    PacketModelConfig config;
    config.synchronousIna = true;
    const ClusterTopology topo(testbedCluster(20.0));
    PacketNetworkModel model(topo, config);
    model.jobStarted(makeSpec(0, 4, 100000, "VGG16"),
                     twoWorkerPlacement(), 0.0);
    std::vector<JobId> completed;
    model.advance(0.0, 0.5, completed);
    EXPECT_LE(model.currentRate(JobId(0)), 20.0 + 1.0);
}

TEST(PacketModel, CountersSurviveJobRetirement)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 20, "ResNet50"),
                     twoWorkerPlacement(), 0.0);
    std::vector<JobId> completed;
    Seconds now = 0.0;
    while (completed.empty())
        now = model.advance(now, now + 5.0, completed);
    const double ratio_before =
        model.aggregationCounters(JobId(0)).ratio();
    model.jobFinished(JobId(0), now);
    EXPECT_DOUBLE_EQ(model.aggregationCounters(JobId(0)).ratio(),
                     ratio_before);
    EXPECT_EQ(model.runningJobs(), 0u);
}

TEST(PacketModel, CruiseMakesLongTracesTractable)
{
    // A long compute-heavy run must not simulate every RTT slot.
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 2000, "ResNet50"),
                     twoWorkerPlacement(), 0.0);
    std::vector<JobId> completed;
    Seconds now = 0.0;
    while (completed.empty())
        now = model.advance(now, now + 50.0, completed);
    // ~2000 iterations x (compute + comm) — full slotting would need
    // now/rtt ≈ millions of slots; cruising must cut that drastically.
    const auto full_slots = static_cast<long long>(now / 50e-6);
    EXPECT_LT(model.slotsSimulated(), full_slots / 2);
}

TEST(PacketModel, StartFinishErrorsAreChecked)
{
    const ClusterTopology topo(testbedCluster());
    PacketNetworkModel model(topo);
    model.jobStarted(makeSpec(0, 4, 10), twoWorkerPlacement(), 0.0);
    EXPECT_THROW(
        model.jobStarted(makeSpec(0, 4, 10), twoWorkerPlacement(), 0.0),
        InternalError);
    EXPECT_THROW(model.jobFinished(JobId(5), 0.0), InternalError);
}

TEST(PacketModel, InvalidConfigRejected)
{
    const ClusterTopology topo(testbedCluster());
    PacketModelConfig config;
    config.multiplicativeDecrease = 1.5;
    EXPECT_THROW(PacketNetworkModel model(topo, config), ConfigError);
    config.multiplicativeDecrease = 0.5;
    config.additiveIncrease = 0.0;
    EXPECT_THROW(PacketNetworkModel model2(topo, config), ConfigError);
}

TEST(PacketModel, HashCollisionsReduceAggregation)
{
    // With the occupancy model on, a pool exactly matching the demand
    // loses some capacity to collisions, so the aggregation ratio drops
    // below the collision-free value.
    const auto measure = [&](bool collisions) {
        ClusterConfig cluster = testbedCluster(10.0);
        const ClusterTopology topo(cluster);
        PacketModelConfig config;
        config.maxRate = 10.0;
        config.modelHashCollisions = collisions;
        PacketNetworkModel model(topo, config);
        model.jobStarted(makeSpec(0, 4, 20, "VGG16"),
                         twoWorkerPlacement(), 0.0);
        std::vector<JobId> completed;
        Seconds now = 0.0;
        while (completed.empty() && now < 600.0)
            now = model.advance(now, now + 10.0, completed);
        return model.aggregationCounters(JobId(0)).ratio();
    };
    const double clean = measure(false);
    const double collided = measure(true);
    EXPECT_GT(clean, collided + 0.1);
    // The fluid occupancy limit at demand == pool is 1 - 1/e ~= 0.63.
    EXPECT_NEAR(collided, 1.0 - std::exp(-1.0), 0.08);
}

TEST(PacketModel, InallocPeriodicReallocRepartitionsByFanIn)
{
    // Synchronous mode with periodic reallocation: after the period
    // elapses, the 2-server job (fan-in 2) should sustain a higher rate
    // than the 1-server job (fan-in 1) because its region is larger.
    PacketModelConfig config;
    config.synchronousIna = true;
    config.syncReallocPeriod = 0.2;
    const ClusterTopology topo(testbedCluster(30.0));
    PacketNetworkModel model(topo, config);

    model.jobStarted(makeSpec(0, 4, 100000, "VGG16"),
                     twoWorkerPlacement(0, 1, 4), 0.0);
    Placement narrow;
    narrow.workers[ServerId(2)] = 2;
    narrow.psServer = ServerId(3);
    narrow.inaRacks = {RackId(0)};
    model.jobStarted(makeSpec(1, 2, 100000, "VGG16"), narrow, 0.0);

    std::vector<JobId> completed;
    model.advance(0.0, 1.0, completed);
    ASSERT_TRUE(completed.empty());
    // Proportional regions: job0 gets 20 Gbps, job1 gets 10 Gbps.
    EXPECT_GT(model.currentRate(JobId(0)),
              model.currentRate(JobId(1)) + 2.0);
}

TEST(PacketModel, StaticSyncSplitsEquallyRegardlessOfFanIn)
{
    PacketModelConfig config;
    config.synchronousIna = true; // no realloc period: SwitchML static
    const ClusterTopology topo(testbedCluster(30.0));
    PacketNetworkModel model(topo, config);

    model.jobStarted(makeSpec(0, 4, 100000, "VGG16"),
                     twoWorkerPlacement(0, 1, 4), 0.0);
    Placement narrow;
    narrow.workers[ServerId(2)] = 2;
    narrow.psServer = ServerId(3);
    narrow.inaRacks = {RackId(0)};
    model.jobStarted(makeSpec(1, 2, 100000, "VGG16"), narrow, 0.0);

    std::vector<JobId> completed;
    model.advance(0.0, 1.0, completed);
    ASSERT_TRUE(completed.empty());
    // Equal 15/15 regions cap both jobs alike.
    EXPECT_NEAR(model.currentRate(JobId(0)),
                model.currentRate(JobId(1)), 2.0);
}

} // namespace
} // namespace netpack
