/**
 * @file
 * Tier-1 tests for the observability layer: metrics registry semantics
 * (counters under concurrency, histogram bucket boundaries, snapshot and
 * reset), trace-file round-trips (the emitted file must parse as JSON
 * and contain the recorded spans), and the run-manifest writer.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_manifest.h"
#include "obs/trace.h"

namespace netpack {
namespace {

/**
 * Minimal recursive-descent JSON validator: accepts exactly the value
 * grammar of RFC 8259 over the whole input. Enough to prove the files
 * the obs layer writes are machine-readable without an external parser.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Enables metrics for one test and restores isolation afterwards. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setMetricsEnabled(true);
        obs::Registry::instance().reset();
        obs::clearTrace();
    }

    void TearDown() override
    {
        obs::configureTrace("");
        obs::clearTrace();
        obs::Registry::instance().reset();
        obs::setMetricsEnabled(false);
    }
};

TEST_F(ObsTest, CounterAccumulates)
{
    obs::Counter &c = obs::counter("test.counter");
    c.add(3);
    c.add(4);
    EXPECT_EQ(c.value(), 7);
    EXPECT_EQ(obs::snapshot().counters.at("test.counter"), 7);
}

TEST_F(ObsTest, MacroIsNoOpWhenDisabled)
{
    obs::setMetricsEnabled(false);
    NETPACK_COUNT("test.disabled", 1);
    obs::setMetricsEnabled(true);
    const auto snap = obs::snapshot();
    EXPECT_EQ(snap.counters.count("test.disabled"), 0u);
}

TEST_F(ObsTest, ConcurrentIncrementsAreExact)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    obs::Counter &c = obs::counter("test.concurrent");
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, GaugeIsLastWriteWins)
{
    obs::Gauge &g = obs::gauge("test.gauge");
    g.set(1.5);
    g.set(-2.25);
    EXPECT_DOUBLE_EQ(g.value(), -2.25);
    EXPECT_DOUBLE_EQ(obs::snapshot().gauges.at("test.gauge"), -2.25);
}

TEST_F(ObsTest, HistogramBucketBoundaries)
{
    // Bucket i counts bounds[i-1] < x <= bounds[i]; overflow is last.
    obs::Histogram &h =
        obs::histogram("test.hist", std::vector<double>{1.0, 2.0, 4.0});
    h.record(0.5); // <= 1        -> bucket 0
    h.record(1.0); // == bound    -> bucket 0 (inclusive upper edge)
    h.record(1.5); // (1, 2]      -> bucket 1
    h.record(4.0); // (2, 4]      -> bucket 2
    h.record(9.0); // > 4         -> overflow
    const auto counts = h.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2);
    EXPECT_EQ(counts[1], 1);
    EXPECT_EQ(counts[2], 1);
    EXPECT_EQ(counts[3], 1);
    EXPECT_EQ(h.total(), 5);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST_F(ObsTest, HistogramBoundsFixedAtFirstRegistration)
{
    obs::Histogram &a =
        obs::histogram("test.fixed", std::vector<double>{1.0, 2.0});
    obs::Histogram &b =
        obs::histogram("test.fixed", std::vector<double>{99.0});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTest, ResetZeroesButKeepsRegistrations)
{
    obs::counter("test.reset").add(5);
    obs::Registry::instance().reset();
    const auto snap = obs::snapshot();
    ASSERT_EQ(snap.counters.count("test.reset"), 1u);
    EXPECT_EQ(snap.counters.at("test.reset"), 0);
}

TEST_F(ObsTest, MetricsFileIsValidJson)
{
    const std::string path = ::testing::TempDir() + "netpack_metrics.json";
    obs::counter("test.file").add(2);
    obs::gauge("test.file_gauge").set(0.5);
    obs::histogram("test.file_hist", obs::kPow2Buckets).record(3.0);
    obs::writeMetricsFile(path, obs::snapshot());
    const std::string text = slurp(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\"test.file\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTest, TraceRoundTrip)
{
    const std::string path = ::testing::TempDir() + "netpack_trace.json";
    obs::configureTrace(path);
    EXPECT_TRUE(obs::traceEnabled());
    {
        NETPACK_SPAN(outer, "test.outer");
        outer.arg("jobs", 42);
        outer.arg("ratio", 0.75);
        {
            NETPACK_SPAN(inner, "test.inner");
        }
    }
    EXPECT_EQ(obs::traceEventCount(), 2u);
    obs::flushTrace();

    const std::string text = slurp(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(text.find("\"test.inner\""), std::string::npos);
    EXPECT_NE(text.find("\"jobs\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("traceEvents"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(ObsTest, SpanIsNoOpWhenTracingDisabled)
{
    obs::configureTrace("");
    {
        NETPACK_SPAN(span, "test.ignored");
        span.arg("k", 1);
    }
    EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST_F(ObsTest, RunManifestIsValidJson)
{
    const std::string path = ::testing::TempDir() + "netpack_manifest.json";
    obs::RunManifest manifest;
    manifest.bench = "obs_test";
    manifest.title = "manifest round-trip";
    manifest.args = {"--json", path};
    ClusterConfig cluster;
    manifest.addCluster("test", cluster);
    manifest.addCluster("test", cluster); // dedup by name
    manifest.addSeed(7);
    manifest.addSeed(7); // dedup
    manifest.addSeed(11);
    RunMetrics metrics;
    manifest.addRun("unit|run", metrics);
    RunningStats jct, de, makespan, util;
    for (double v : {1.0, 2.0, 3.0}) {
        jct.add(v);
        de.add(v * 0.5);
        makespan.add(v * 10.0);
        util.add(v * 0.1);
    }
    manifest.addAggregate("unit|cell", jct, de, makespan, util);
    manifest.addAggregate("unit|cell", jct, de, makespan, util); // replace
    Table table({"col_a", "col_b"});
    table.addRow({"1", "x\"quoted\""});
    manifest.tables.push_back(table);

    obs::counter("waterfill.incremental_hits").add(3);
    obs::recordLogHistogram("placement.batch_us", obs::kLatencySpecUs,
                            125.0);
    obs::recordSeriesPoint("sim.queue_depth", 1.0, 4.0);
    obs::recordSeriesPoint("sim.queue_depth", 2.0, 6.0);
    obs::writeRunManifest(path, manifest);

    const std::string text = slurp(path);
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("netpack.run_manifest/4"), std::string::npos);
    // /4 blocks: telemetry series and log-histogram quantiles.
    EXPECT_NE(text.find("\"series\""), std::string::npos);
    EXPECT_NE(text.find("\"quantiles\""), std::string::npos);
    EXPECT_NE(text.find("\"sim.queue_depth\""), std::string::npos);
    EXPECT_NE(text.find("\"placement.batch_us\""), std::string::npos);
    EXPECT_NE(text.find("\"wallclock\": true"), std::string::npos);
    EXPECT_NE(text.find("\"total_pushed\": 2"), std::string::npos);
    EXPECT_NE(text.find("\"journal\""), std::string::npos);
    EXPECT_NE(text.find("\"replay_divergences\""), std::string::npos);
    EXPECT_NE(text.find("waterfill.incremental_hits"), std::string::npos);
    EXPECT_NE(text.find("\"seeds\""), std::string::npos);
    EXPECT_NE(text.find("unit|run"), std::string::npos);
    EXPECT_NE(text.find("\"aggregates\""), std::string::npos);
    EXPECT_NE(text.find("\"ci95\""), std::string::npos);
    // Same-cell addAggregate replaces rather than appends.
    EXPECT_EQ(manifest.aggregates.size(), 1u);
    EXPECT_EQ(manifest.aggregates[0].avgJct.count, 3u);
    EXPECT_DOUBLE_EQ(manifest.aggregates[0].avgJct.mean, 2.0);
    // Dedup held: one cluster entry, two seeds.
    EXPECT_EQ(manifest.clusters.size(), 1u);
    EXPECT_EQ(manifest.seeds.size(), 2u);
    std::remove(path.c_str());
}

TEST_F(ObsTest, JsonWriterEscapesAndNestsCorrectly)
{
    std::ostringstream out;
    {
        obs::JsonWriter json(out, 0);
        json.beginObject();
        json.kv("plain", 1);
        json.kv("text", std::string_view("a\"b\\c\n\t"));
        json.key("arr");
        json.beginArray();
        json.value(1.5);
        json.value(true);
        json.beginObject();
        json.kv("neg", -7);
        json.endObject();
        json.endArray();
        json.kv("inf", std::numeric_limits<double>::infinity());
        json.endObject();
    }
    const std::string text = out.str();
    EXPECT_TRUE(JsonValidator(text).valid()) << text;
    EXPECT_NE(text.find("\\\"b\\\\c\\n\\t"), std::string::npos);
    EXPECT_NE(text.find("\"inf\""), std::string::npos);
}

TEST_F(ObsTest, StringEscapingRoundTrips)
{
    // Every escape class the journal and manifest writers can hit:
    // quotes/backslashes, the named control escapes, arbitrary control
    // characters, and non-ASCII UTF-8 (passed through byte-for-byte).
    const std::vector<std::string> cases = {
        "",
        "plain ascii",
        "quote\" backslash\\ slash/",
        "\n\r\t\b\f",
        std::string("\x01\x02\x1f", 3),      // bare control chars
        std::string("nul\0inside", 10),      // embedded NUL
        "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97", // 2- and 3-byte UTF-8
        "\xf0\x9f\x9a\x80 rocket",           // 4-byte UTF-8
        "already \\n escaped-looking \\u0041 text",
    };
    for (const std::string &original : cases) {
        SCOPED_TRACE(obs::jsonEscape(original));
        // Direct escape/unescape inverse.
        EXPECT_EQ(obs::jsonUnescape(obs::jsonEscape(original)), original);
        // Through a full document: writer → parser.
        std::ostringstream out;
        {
            obs::JsonWriter json(out, 0);
            json.beginObject();
            json.key(original);
            json.value(original);
            json.endObject();
        }
        const obs::JsonValue doc = obs::parseJson(out.str());
        ASSERT_TRUE(doc.has(original)) << out.str();
        EXPECT_EQ(doc.at(original).asString(), original);
    }
}

TEST_F(ObsTest, UnicodeEscapeSequencesDecode)
{
    // \uXXXX decodes to UTF-8, including surrogate pairs.
    EXPECT_EQ(obs::jsonUnescape("\\u0041"), "A");
    EXPECT_EQ(obs::jsonUnescape("\\u00e9"), "\xc3\xa9");
    EXPECT_EQ(obs::jsonUnescape("\\u6f22\\u5b57"),
              "\xe6\xbc\xa2\xe5\xad\x97");
    EXPECT_EQ(obs::jsonUnescape("\\ud83d\\ude80"), "\xf0\x9f\x9a\x80");
    EXPECT_EQ(obs::jsonUnescape("\\u0000"), std::string(1, '\0'));

    // Case-insensitive hex digits; mixed with literal text.
    EXPECT_EQ(obs::jsonUnescape("x\\u004Ay"), "xJy");

    // Malformed sequences are ConfigErrors, not silent corruption.
    EXPECT_THROW(obs::jsonUnescape("\\u12"), ConfigError);
    EXPECT_THROW(obs::jsonUnescape("\\u12zz"), ConfigError);
    EXPECT_THROW(obs::jsonUnescape("\\ud83d"), ConfigError); // lone high
    EXPECT_THROW(obs::jsonUnescape("\\ud83d\\u0041"), ConfigError);
    EXPECT_THROW(obs::jsonUnescape("\\ude80"), ConfigError); // stray low
    EXPECT_THROW(obs::jsonUnescape("\\q"), ConfigError);

    // A parsed document accepts \u spellings of what the writer would
    // have escaped natively.
    const obs::JsonValue doc =
        obs::parseJson("{\"k\": \"tab\\u0009 rocket\\uD83D\\uDE80\"}");
    EXPECT_EQ(doc.at("k").asString(), "tab\t rocket\xf0\x9f\x9a\x80");
}

TEST_F(ObsTest, MetricScopeCapturesWithoutTouchingRegistry)
{
    obs::MetricsSnapshot captured;
    {
        obs::MetricScope scope;
        NETPACK_COUNT("test.scoped", 2);
        NETPACK_COUNT("test.scoped", 3);
        NETPACK_GAUGE("test.scoped_gauge", 1.25);
        NETPACK_HISTOGRAM("test.scoped_hist",
                          (std::vector<double>{1.0, 2.0}), 1.5);
        captured = scope.snapshot();
    }
    // Nothing leaked into the process-wide registry...
    const auto global = obs::snapshot();
    EXPECT_EQ(global.counters.count("test.scoped"), 0u);
    EXPECT_EQ(global.gauges.count("test.scoped_gauge"), 0u);
    EXPECT_EQ(global.histograms.count("test.scoped_hist"), 0u);
    // ...but the scope saw everything.
    EXPECT_EQ(captured.counters.at("test.scoped"), 5);
    EXPECT_DOUBLE_EQ(captured.gauges.at("test.scoped_gauge"), 1.25);
    const auto &hist = captured.histograms.at("test.scoped_hist");
    EXPECT_EQ(hist.total, 1);
    EXPECT_DOUBLE_EQ(hist.sum, 1.5);
    ASSERT_EQ(hist.counts.size(), 3u);
    EXPECT_EQ(hist.counts[1], 1); // 1.5 lands in (1, 2]
}

TEST_F(ObsTest, NestedMetricScopeFoldsIntoParent)
{
    obs::MetricScope outer;
    NETPACK_COUNT("test.fold", 1);
    {
        obs::MetricScope inner;
        NETPACK_COUNT("test.fold", 10);
    } // inner folds into outer on destruction
    EXPECT_EQ(outer.snapshot().counters.at("test.fold"), 11);
    EXPECT_EQ(obs::snapshot().counters.count("test.fold"), 0u);
}

TEST_F(ObsTest, RegistryMergePublishesScopedSnapshot)
{
    obs::counter("test.merge").add(1);
    obs::MetricsSnapshot captured;
    {
        obs::MetricScope scope;
        NETPACK_COUNT("test.merge", 4);
        NETPACK_HISTOGRAM("test.merge_hist",
                          (std::vector<double>{1.0}), 0.5);
        captured = scope.snapshot();
    }
    obs::Registry::instance().merge(captured);
    const auto global = obs::snapshot();
    EXPECT_EQ(global.counters.at("test.merge"), 5); // 1 + merged 4
    EXPECT_EQ(global.histograms.at("test.merge_hist").total, 1);
}

TEST_F(ObsTest, RegistryMergeMismatchBumpsSkipCounter)
{
    // Pre-register the histogram with different bounds than the scoped
    // capture used: merge must skip it and say so via obs.merge_skipped,
    // instead of silently folding incompatible buckets.
    obs::histogram("test.mismatch", {1.0, 2.0, 4.0}).record(1.5);
    obs::MetricsSnapshot captured;
    {
        obs::MetricScope scope;
        NETPACK_HISTOGRAM("test.mismatch", (std::vector<double>{8.0}), 0.5);
        captured = scope.snapshot();
    }
    obs::Registry::instance().merge(captured);
    const auto global = obs::snapshot();
    EXPECT_EQ(global.histograms.at("test.mismatch").total, 1); // unmerged
    EXPECT_EQ(global.counters.at("obs.merge_skipped"), 1);
}

TEST_F(ObsTest, MacrosHitRegistryAgainAfterScopeExits)
{
    {
        obs::MetricScope scope;
        NETPACK_COUNT("test.rearm", 1);
    }
    NETPACK_COUNT("test.rearm", 7);
    EXPECT_EQ(obs::snapshot().counters.at("test.rearm"), 7);
}

} // namespace
} // namespace netpack
