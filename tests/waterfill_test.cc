/**
 * @file
 * Unit and property tests for the INA-specific water-filling estimator
 * (Algorithm 1): converged rates, joint bandwidth/PAT accounting, PAT
 * exhaustion dynamics, and max-min invariants on random instances.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/placement_context.h"
#include "waterfill/steady_state.h"

namespace netpack {
namespace {

ClusterTopology
oneRackTopo(Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = 1;
    config.serversPerRack = 4;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

ClusterTopology
twoRackTopo(double oversub, Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = oversub;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

PlacedJob
makeJob(int id, std::initializer_list<std::pair<int, int>> workers, int ps,
        std::initializer_list<int> ina_racks)
{
    PlacedJob job;
    job.id = JobId(id);
    for (const auto &[server, count] : workers)
        job.placement.workers[ServerId(server)] = count;
    job.placement.psServer = ServerId(ps);
    for (int rack : ina_racks)
        job.placement.inaRacks.insert(RackId(rack));
    return job;
}

TEST(WaterFilling, NoJobsLeavesResourcesUntouched)
{
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const SteadyState state = wf.estimate(std::vector<PlacedJob>{});
    for (int l = 0; l < topo.numLinks(); ++l)
        EXPECT_DOUBLE_EQ(state.linkResidual[static_cast<std::size_t>(l)],
                         topo.link(LinkId(l)).capacity);
    EXPECT_DOUBLE_EQ(state.patResidual[0], 400.0);
}

TEST(WaterFilling, LocalJobIsFree)
{
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const auto job = makeJob(0, {{0, 4}}, 0, {});
    const SteadyState state = wf.estimate({job});
    EXPECT_TRUE(std::isinf(state.jobThroughput(JobId(0))));
    EXPECT_DOUBLE_EQ(state.serverAvailBw(topo, ServerId(0)), 100.0);
}

TEST(WaterFilling, SingleJobSaturatesItsAccessLink)
{
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const auto job = makeJob(0, {{0, 4}, {1, 4}}, 2, {0});
    const SteadyState state = wf.estimate({job});
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 100.0, 1e-6);
    EXPECT_NEAR(state.serverAvailBw(topo, ServerId(0)), 0.0, 1e-6);
    // PAT consumed equals the aggregated rate.
    EXPECT_NEAR(state.patResidual[0], 300.0, 1e-6);
    // The PS link carries one merged flow.
    EXPECT_EQ(state.serverFlows(topo, ServerId(2)), 1);
}

TEST(WaterFilling, TwoEqualJobsShareFairly)
{
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const auto job1 = makeJob(0, {{0, 2}, {1, 2}}, 2, {0});
    const auto job2 = makeJob(1, {{0, 2}, {1, 2}}, 2, {0});
    const SteadyState state = wf.estimate({job1, job2});
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 50.0, 1e-6);
    EXPECT_NEAR(state.jobThroughput(JobId(1)), 50.0, 1e-6);
    EXPECT_NEAR(state.patResidual[0], 300.0, 1e-6);
}

TEST(WaterFilling, AsymmetricJobsStillGetEqualJobRates)
{
    // Max-min fairness is per job, not per flow: a 2-server job and a
    // 1-server job sharing the PS link converge to the same rate when
    // aggregation collapses both to one flow.
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const auto big = makeJob(0, {{0, 4}, {1, 4}}, 3, {0});
    const auto small2 = makeJob(1, {{2, 4}, {1, 1}}, 3, {0});
    const SteadyState state = wf.estimate({big, small2});
    EXPECT_NEAR(state.jobThroughput(JobId(0)),
                state.jobThroughput(JobId(1)), 1e-6);
}

TEST(WaterFilling, PatExhaustionSwitchesToPassThrough)
{
    // PAT = 30 shared by two jobs; once it is gone, the ToR stops
    // merging and the PS link must carry per-server flows, ending at
    // rate 15 (aggregated) + 17.5 (pass-through fair share) = 32.5.
    const ClusterTopology topo = oneRackTopo(30.0);
    WaterFillingEstimator wf(topo);
    const auto job1 = makeJob(0, {{0, 2}, {1, 2}}, 3, {0});
    const auto job2 = makeJob(1, {{0, 2}, {1, 2}}, 3, {0});
    const SteadyState state = wf.estimate({job1, job2});
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 32.5, 1e-6);
    EXPECT_NEAR(state.jobThroughput(JobId(1)), 32.5, 1e-6);
    EXPECT_NEAR(state.patResidual[0], 0.0, 1e-6);
    // Post-exhaustion each job contributes 2 flows to the PS link.
    EXPECT_EQ(state.serverFlows(topo, ServerId(3)), 4);
    EXPECT_NEAR(state.serverAvailBw(topo, ServerId(3)), 0.0, 1e-6);
}

TEST(WaterFilling, ZeroPatBehavesLikeNoIna)
{
    const ClusterTopology with_pat = oneRackTopo(0.0);
    WaterFillingEstimator wf(with_pat);
    const auto ina = makeJob(0, {{0, 2}, {1, 2}}, 2, {0});
    const auto no_ina = makeJob(0, {{0, 2}, {1, 2}}, 2, {});
    const SteadyState a = wf.estimate({ina});
    const SteadyState b = wf.estimate({no_ina});
    EXPECT_NEAR(a.jobThroughput(JobId(0)), b.jobThroughput(JobId(0)),
                1e-9);
}

TEST(WaterFilling, InaSavesCrossRackBandwidth)
{
    // Oversubscribed core: with INA a cross-rack job is core-limited at
    // 50 Gbps; without INA its two worker streams share the core.
    const ClusterTopology topo = twoRackTopo(4.0); // core = 50 Gbps
    WaterFillingEstimator wf(topo);
    const auto with_ina = makeJob(0, {{0, 4}, {1, 4}}, 2, {0, 1});
    const auto without_ina = makeJob(0, {{0, 4}, {1, 4}}, 2, {});
    const SteadyState a = wf.estimate({with_ina});
    const SteadyState b = wf.estimate({without_ina});
    EXPECT_NEAR(a.jobThroughput(JobId(0)), 50.0, 1e-6);
    EXPECT_NEAR(b.jobThroughput(JobId(0)), 25.0, 1e-6);
}

TEST(WaterFilling, PsRackCoreLinkAbsorbsAllRemoteStreams)
{
    // Three racks feed one PS rack: the PS-side core link is the
    // bottleneck carrying one merged stream per remote rack.
    ClusterConfig config;
    config.numRacks = 4;
    config.serversPerRack = 1;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = 2.0; // core = 50
    config.torPatGbps = 1000.0;
    const ClusterTopology topo(config);
    WaterFillingEstimator wf(topo);
    const auto job = makeJob(0, {{0, 4}, {1, 4}, {2, 4}}, 3, {0, 1, 2, 3});
    const SteadyState state = wf.estimate({job});
    // PS core link: 3 incoming merged flows over 50 Gbps → 16.67 each.
    EXPECT_NEAR(state.jobThroughput(JobId(0)), 50.0 / 3.0, 1e-6);
    EXPECT_EQ(state.rackFlows(topo, RackId(3)), 3);
}

TEST(WaterFilling, TerminatesWithinResourceBound)
{
    const ClusterTopology topo = oneRackTopo(30.0);
    WaterFillingEstimator wf(topo);
    const auto job1 = makeJob(0, {{0, 2}, {1, 2}}, 3, {0});
    const auto job2 = makeJob(1, {{0, 2}, {1, 2}}, 3, {0});
    wf.estimate({job1, job2});
    EXPECT_LE(wf.lastIterations(), topo.numLinks() + topo.numRacks() + 1);
}

TEST(WaterFilling, ReusableAcrossCalls)
{
    const ClusterTopology topo = oneRackTopo();
    WaterFillingEstimator wf(topo);
    const auto job = makeJob(0, {{0, 4}, {1, 4}}, 2, {0});
    const SteadyState first = wf.estimate({job});
    const SteadyState second = wf.estimate({job});
    EXPECT_DOUBLE_EQ(first.jobThroughput(JobId(0)),
                     second.jobThroughput(JobId(0)));
}

// ------------------------------------------------------ property sweep

/**
 * Random multi-job instances; checks the estimator's core invariants:
 * residuals non-negative, every network job gets a positive rate, and
 * every network job is bottlenecked by at least one saturated link on
 * its path (the max-min witness).
 */
class WaterFillingPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(WaterFillingPropertyTest, MaxMinInvariantsHold)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    ClusterConfig config;
    config.numRacks = static_cast<int>(rng.uniformInt(1, 4));
    config.serversPerRack = static_cast<int>(rng.uniformInt(2, 5));
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = rng.uniform() < 0.5 ? 1.0 : 3.0;
    config.torPatGbps = rng.uniform() < 0.3 ? 0.0 : rng.uniform(20.0, 600.0);
    const ClusterTopology topo(config);

    const int num_jobs = static_cast<int>(rng.uniformInt(1, 8));
    std::vector<PlacedJob> jobs;
    for (int j = 0; j < num_jobs; ++j) {
        PlacedJob job;
        job.id = JobId(j);
        const int spread = static_cast<int>(rng.uniformInt(1, 3));
        for (int w = 0; w < spread; ++w) {
            const ServerId server(static_cast<int>(
                rng.uniformInt(0, topo.numServers() - 1)));
            job.placement.workers[server] += 1;
        }
        job.placement.psServer = ServerId(
            static_cast<int>(rng.uniformInt(0, topo.numServers() - 1)));
        if (rng.uniform() < 0.8) {
            for (RackId rack : job.placement.allRacks(topo))
                job.placement.inaRacks.insert(rack);
        }
        jobs.push_back(std::move(job));
    }

    WaterFillingEstimator wf(topo);
    const SteadyState state = wf.estimate(jobs);

    for (double residual : state.linkResidual)
        EXPECT_GE(residual, -1e-6);
    for (double residual : state.patResidual)
        EXPECT_GE(residual, -1e-6);

    for (const PlacedJob &job : jobs) {
        JobHierarchy h(topo, job.id, job.placement);
        if (h.local()) {
            EXPECT_TRUE(std::isinf(state.jobThroughput(job.id)));
            continue;
        }
        const Gbps rate = state.jobThroughput(job.id);
        EXPECT_GT(rate, 0.0) << "job " << job.id.value << " starved";
        EXPECT_LE(rate, config.serverLinkGbps + 1e-6);

        // Max-min witness: some link on the job's path is saturated.
        h.updateFlows(state.patResidual);
        bool saturated = false;
        for (const auto &node : h.nodes()) {
            for (LinkId link : node.uplinks)
                saturated |= state.linkResidual[link.index()] <= 1e-6;
        }
        EXPECT_TRUE(saturated)
            << "job " << job.id.value << " has no bottleneck";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterFillingPropertyTest,
                         ::testing::Range(0, 24));

// ------------------------------------- incremental re-estimation sweep

/** Full-vs-incremental agreement: rates/residuals within 1e-9. */
void
expectStatesAgree(const SteadyState &incremental, const SteadyState &full,
                  const char *what)
{
    ASSERT_EQ(incremental.jobRate.size(), full.jobRate.size()) << what;
    for (const auto &[id, rate] : full.jobRate) {
        const auto it = incremental.jobRate.find(id);
        ASSERT_NE(it, incremental.jobRate.end())
            << what << ": job " << id.value << " missing";
        EXPECT_NEAR(it->second, rate, 1e-9)
            << what << ": job " << id.value;
    }
    ASSERT_EQ(incremental.linkResidual.size(), full.linkResidual.size());
    for (std::size_t l = 0; l < full.linkResidual.size(); ++l) {
        EXPECT_NEAR(incremental.linkResidual[l], full.linkResidual[l],
                    1e-9)
            << what << ": link " << l;
        EXPECT_EQ(incremental.linkFlows[l], full.linkFlows[l])
            << what << ": link " << l << " flows";
    }
    for (std::size_t r = 0; r < full.patResidual.size(); ++r) {
        EXPECT_NEAR(incremental.patResidual[r], full.patResidual[r], 1e-9)
            << what << ": rack " << r;
    }
}

/** Random placement that fits nothing in particular — pure churn fuel. */
PlacedJob
randomPlacement(Rng &rng, const ClusterTopology &topo, int id)
{
    PlacedJob job;
    job.id = JobId(id);
    const int spread = static_cast<int>(rng.uniformInt(1, 3));
    for (int w = 0; w < spread; ++w) {
        const ServerId server(
            static_cast<int>(rng.uniformInt(0, topo.numServers() - 1)));
        job.placement.workers[server] += 1;
    }
    job.placement.psServer = ServerId(
        static_cast<int>(rng.uniformInt(0, topo.numServers() - 1)));
    if (rng.uniform() < 0.8) {
        for (RackId rack : job.placement.allRacks(topo))
            job.placement.inaRacks.insert(rack);
    }
    return job;
}

/**
 * Random arrival/departure churn through a PlacementContext: after
 * every step the incrementally re-converged steady state must match a
 * from-scratch estimate over the same running set within 1e-9.
 */
class IncrementalEquivalenceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IncrementalEquivalenceTest, ChurnMatchesFullEstimate)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    ClusterConfig config;
    config.numRacks = static_cast<int>(rng.uniformInt(2, 5));
    config.serversPerRack = static_cast<int>(rng.uniformInt(2, 4));
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.oversubscription = rng.uniform() < 0.5 ? 1.0 : 3.0;
    config.torPatGbps = rng.uniform() < 0.3 ? 0.0 : rng.uniform(20.0, 600.0);
    const ClusterTopology topo(config);

    PlacementContext ctx(topo);
    WaterFillingEstimator wf(topo);
    std::vector<PlacedJob> running;
    int next_id = 0;

    for (int step = 0; step < 40; ++step) {
        const bool arrive = running.empty() || rng.uniform() < 0.6;
        if (arrive) {
            PlacedJob job = randomPlacement(rng, topo, next_id++);
            running.push_back(job);
            ctx.addJob(job);
        } else {
            const std::size_t victim = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(running.size()) - 1));
            ctx.removeJob(running[victim].id);
            running.erase(running.begin() +
                          static_cast<std::ptrdiff_t>(victim));
        }
        const SteadyState &incremental = ctx.steadyState();
        const SteadyState full = wf.estimate(running);
        expectStatesAgree(incremental, full, "churn step");
    }
    // The sweep must actually exercise the incremental path, not fall
    // back to full estimates every step.
    EXPECT_GT(ctx.stats().incrementalEstimates, 0);
}

TEST_P(IncrementalEquivalenceTest, InaToggleInvalidatesStructurally)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
    ClusterConfig config;
    config.numRacks = 3;
    config.serversPerRack = 3;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 300.0;
    const ClusterTopology topo(config);

    PlacementContext ctx(topo);
    WaterFillingEstimator wf(topo);
    std::vector<PlacedJob> running;
    for (int j = 0; j < 6; ++j) {
        running.push_back(randomPlacement(rng, topo, j));
        ctx.addJob(running.back());
    }
    ctx.steadyState();

    // Toggle INA off and back on for random multi-rack jobs; each toggle
    // must escalate to a structural (full) re-estimate that matches the
    // scratch answer.
    for (int round = 0; round < 6; ++round) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(running.size()) - 1));
        PlacedJob &job = running[pick];
        std::set<RackId> toggled;
        if (job.placement.inaRacks.empty())
            toggled = job.placement.allRacks(topo);
        job.placement.inaRacks = toggled;
        ctx.updateInaRacks(job.id, toggled);
        if (ctx.dirty())
            EXPECT_TRUE(ctx.structuralDirty());
        expectStatesAgree(ctx.steadyState(), wf.estimate(running),
                          "ina toggle");
    }
}

TEST(IncrementalEquivalence, FailureKillMatchesFullEstimate)
{
    const ClusterTopology topo = twoRackTopo(1.0);
    PlacementContext ctx(topo);
    WaterFillingEstimator wf(topo);

    std::vector<PlacedJob> running = {
        makeJob(0, {{0, 2}, {1, 2}}, 0, {0}),
        makeJob(1, {{2, 2}, {3, 2}}, 2, {1}),
        makeJob(2, {{0, 1}, {2, 1}}, 0, {0, 1}),
    };
    for (const PlacedJob &job : running)
        ctx.addJob(job);
    ctx.steadyState();

    // Server 0 fails: jobs 0 and 2 are killed, and the failure path
    // structurally invalidates the context.
    ctx.removeJob(JobId(0));
    ctx.removeJob(JobId(2));
    ctx.invalidateServer(ServerId(0));
    EXPECT_TRUE(ctx.structuralDirty());
    running.erase(running.begin() + 2);
    running.erase(running.begin());

    const auto full_before = ctx.stats().fullEstimates;
    expectStatesAgree(ctx.steadyState(), wf.estimate(running),
                      "failure kill");
    EXPECT_EQ(ctx.stats().fullEstimates, full_before + 1);
}

TEST(IncrementalEquivalence, CleanContextServesFromCache)
{
    const ClusterTopology topo = twoRackTopo(1.0);
    PlacementContext ctx(topo);
    ctx.addJob(makeJob(0, {{0, 2}, {1, 2}}, 0, {0}));
    ctx.steadyState();
    const auto hits_before = ctx.stats().cacheHits;
    ctx.steadyState();
    ctx.steadyState();
    EXPECT_EQ(ctx.stats().cacheHits, hits_before + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Range(0, 16));

} // namespace
} // namespace netpack
