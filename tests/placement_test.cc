/**
 * @file
 * Unit and property tests for the placement layer: the job-subset
 * knapsack, NetPack's worker/PS dynamic program, selective INA enabling,
 * and all baseline policies.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "placement/baselines.h"
#include "placement/knapsack.h"
#include "placement/netpack_placer.h"

namespace netpack {
namespace {

ClusterTopology
makeTopo(int racks = 2, int servers_per_rack = 4, Gbps pat = 400.0,
         double oversub = 1.0)
{
    ClusterConfig config;
    config.numRacks = racks;
    config.serversPerRack = servers_per_rack;
    config.gpusPerServer = 4;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    config.oversubscription = oversub;
    return ClusterTopology(config);
}

JobSpec
makeSpec(int id, int gpus, const std::string &model = "VGG16",
         double value = 1.0)
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 100;
    spec.value = value;
    return spec;
}

// ------------------------------------------------------------- knapsack

TEST(Knapsack, EmptyInputs)
{
    EXPECT_TRUE(solveKnapsack({}, 10).empty());
    EXPECT_TRUE(solveKnapsack({{1, 1.0}}, 0).empty());
}

TEST(Knapsack, EverythingFitsFastPath)
{
    const auto picked = solveKnapsack({{2, 1.0}, {3, 1.0}, {4, 1.0}}, 9);
    EXPECT_EQ(picked.size(), 3u);
}

TEST(Knapsack, PrefersValueOverCount)
{
    // Capacity 4: one item of value 10 beats two items of value 3+3.
    const auto picked =
        solveKnapsack({{2, 3.0}, {2, 3.0}, {4, 10.0}}, 4);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], 2u);
}

TEST(Knapsack, SkipsOverweightItems)
{
    const auto picked = solveKnapsack({{100, 99.0}, {2, 1.0}}, 5);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], 1u);
}

TEST(Knapsack, ResultIndicesAscending)
{
    const auto picked =
        solveKnapsack({{1, 1.0}, {1, 1.0}, {1, 1.0}, {10, 0.5}}, 3);
    ASSERT_EQ(picked.size(), 3u);
    EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
}

/** Exact DP vs brute force on random instances. */
class KnapsackPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KnapsackPropertyTest, MatchesBruteForceOptimum)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    const int n = static_cast<int>(rng.uniformInt(1, 12));
    const int capacity = static_cast<int>(rng.uniformInt(1, 30));
    std::vector<KnapsackItem> items;
    for (int i = 0; i < n; ++i)
        items.push_back({static_cast<int>(rng.uniformInt(1, 10)),
                         rng.uniform(0.1, 5.0)});

    // Brute force over all subsets.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
        int weight = 0;
        double value = 0.0;
        for (int i = 0; i < n; ++i) {
            if (mask & (1 << i)) {
                weight += items[static_cast<std::size_t>(i)].weight;
                value += items[static_cast<std::size_t>(i)].value;
            }
        }
        if (weight <= capacity)
            best = std::max(best, value);
    }

    const auto picked = solveKnapsack(items, capacity);
    int weight = 0;
    double value = 0.0;
    for (std::size_t i : picked) {
        weight += items[i].weight;
        value += items[i].value;
    }
    EXPECT_LE(weight, capacity);
    EXPECT_NEAR(value, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Range(0, 20));

// ------------------------------------------------------------- helpers

TEST(PlacementUtil, GreedyTakeMeetsDemand)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    std::vector<ServerId> order = {ServerId(0), ServerId(1), ServerId(2)};
    const auto taken = placement_util::greedyTake(order, gpus, 6);
    ASSERT_EQ(taken.size(), 2u);
    EXPECT_EQ(taken.at(ServerId(0)), 4);
    EXPECT_EQ(taken.at(ServerId(1)), 2);
}

TEST(PlacementUtil, GreedyTakeFailsWhenShort)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    std::vector<ServerId> order = {ServerId(0)};
    EXPECT_TRUE(placement_util::greedyTake(order, gpus, 5).empty());
}

TEST(PlacementUtil, BestFitSingleServerPrefersTightest)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    gpus.allocate(ServerId(0), JobId(99), 2); // 2 free on server 0
    const ServerId pick =
        placement_util::bestFitSingleServer(topo, gpus, 2);
    EXPECT_EQ(pick.value, 0);
    EXPECT_FALSE(
        placement_util::bestFitSingleServer(topo, gpus, 5).valid());
}

TEST(PlacementUtil, FinalizeBaselineSingleServerColocatesPs)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    std::map<ServerId, int> taken = {{ServerId(3), 4}};
    const Placement p =
        placement_util::finalizeBaseline(topo, gpus, JobId(0), taken);
    EXPECT_TRUE(p.singleServer());
    EXPECT_TRUE(p.inaRacks.empty());
    EXPECT_EQ(gpus.freeGpus(ServerId(3)), 0);
}

TEST(PlacementUtil, FinalizeBaselineMultiServerEnablesIna)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    std::map<ServerId, int> taken = {{ServerId(0), 4}, {ServerId(4), 2}};
    const Placement p =
        placement_util::finalizeBaseline(topo, gpus, JobId(0), taken);
    EXPECT_TRUE(p.psServer.valid());
    EXPECT_EQ(p.inaRacks.size(), p.allRacks(topo).size());
    EXPECT_EQ(p.totalWorkers(), 6);
}

// -------------------------------------------------------------- netpack

TEST(NetPackPlacer, SingleServerFastPath)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 4)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_TRUE(result.placed[0].placement.singleServer());
    EXPECT_EQ(gpus.totalFreeGpus(), topo.totalGpus() - 4);
}

TEST(NetPackPlacer, BestFitReusesFragmentedServer)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    gpus.allocate(ServerId(5), JobId(99), 2); // leaves 2 free
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 2)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].placement.workers.begin()->first.value, 5);
}

TEST(NetPackPlacer, MultiServerExactGpuCount)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 10)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    const Placement &p = result.placed[0].placement;
    EXPECT_EQ(p.totalWorkers(), 10);
    EXPECT_GE(p.workers.size(), 3u); // 4-GPU servers
    EXPECT_TRUE(p.psServer.valid());
    p.validate();
    EXPECT_EQ(gpus.totalFreeGpus(), topo.totalGpus() - 10);
}

TEST(NetPackPlacer, TrimmingReleasesExtras)
{
    // Demand 6 on 4-GPU servers: the all-or-none DP takes 8 and must
    // release 2; the ledger must show exactly 6 GPUs used.
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 6)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].placement.totalWorkers(), 6);
    EXPECT_EQ(gpus.totalFreeGpus(), topo.totalGpus() - 6);
}

TEST(NetPackPlacer, KnapsackDefersLowValueJobs)
{
    // Cluster of 8 GPUs total; three jobs of 4 GPUs with values 5, 1, 4:
    // the subset {0, 2} wins and job 1 defers.
    const ClusterTopology topo = makeTopo(1, 2);
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const std::vector<JobSpec> batch = {makeSpec(0, 4, "VGG16", 5.0),
                                        makeSpec(1, 4, "VGG16", 1.0),
                                        makeSpec(2, 4, "VGG16", 4.0)};
    const auto result = placer.placeBatch(batch, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 2u);
    ASSERT_EQ(result.deferred.size(), 1u);
    EXPECT_EQ(result.deferred[0].value, 1);
}

TEST(NetPackPlacer, DefersWhenClusterFull)
{
    const ClusterTopology topo = makeTopo(1, 2);
    GpuLedger gpus(topo);
    gpus.allocate(ServerId(0), JobId(90), 4);
    gpus.allocate(ServerId(1), JobId(90), 4);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 2)}, topo, gpus, {});
    EXPECT_TRUE(result.placed.empty());
    ASSERT_EQ(result.deferred.size(), 1u);
}

TEST(NetPackPlacer, ZeroPatDisablesAllIna)
{
    const ClusterTopology topo = makeTopo(2, 4, 0.0);
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 12)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_TRUE(result.placed[0].placement.inaRacks.empty());
}

TEST(NetPackPlacer, AmplePatKeepsInaEnabled)
{
    const ClusterTopology topo = makeTopo(2, 4, 1000.0);
    GpuLedger gpus(topo);
    NetPackPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 12)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_FALSE(result.placed[0].placement.inaRacks.empty());
}

TEST(NetPackPlacer, SelectiveInaNeverRegressesTheEstimate)
{
    // PAT of 60 Gbps per ToR and several cross-server jobs: step ④
    // shifts INA toward high-AE jobs, but its estimator guard must
    // guarantee the chosen assignment's predicted batch communication
    // time never exceeds plain INA-for-all.
    const ClusterTopology topo = makeTopo(1, 8, 60.0);
    std::vector<JobSpec> batch;
    for (int j = 0; j < 4; ++j)
        batch.push_back(makeSpec(j, 8));

    GpuLedger selective_gpus(topo);
    NetPackPlacer selective_placer;
    const auto selective =
        selective_placer.placeBatch(batch, topo, selective_gpus, {});
    ASSERT_EQ(selective.placed.size(), 4u);

    NetPackConfig all_config;
    all_config.selectiveIna = false;
    GpuLedger all_gpus(topo);
    NetPackPlacer all_placer(all_config);
    const auto all = all_placer.placeBatch(batch, topo, all_gpus, {});
    ASSERT_EQ(all.placed.size(), 4u);

    // Estimated per-batch communication time under each assignment.
    const auto objective = [&](const std::vector<PlacedJob> &placed) {
        WaterFillingEstimator wf(topo);
        const SteadyState steady = wf.estimate(placed);
        double total = 0.0;
        for (const auto &job : placed) {
            const Gbps rate = steady.jobThroughput(job.id);
            if (std::isfinite(rate))
                total += 1.0 / rate;
        }
        return total;
    };
    EXPECT_LE(objective(selective.placed), objective(all.placed) + 1e-9);
}

TEST(NetPackPlacer, SelectiveInaOffKeepsEverything)
{
    NetPackConfig config;
    config.selectiveIna = false;
    const ClusterTopology topo = makeTopo(1, 8, 60.0);
    GpuLedger gpus(topo);
    NetPackPlacer placer(config);
    std::vector<JobSpec> batch;
    for (int j = 0; j < 4; ++j)
        batch.push_back(makeSpec(j, 8));
    const auto result = placer.placeBatch(batch, topo, gpus, {});
    for (const auto &job : result.placed)
        EXPECT_FALSE(job.placement.inaRacks.empty());
}

TEST(NetPackPlacer, OneDimWeightStillPlacesValidly)
{
    NetPackConfig config;
    config.twoDimWeight = false;
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    NetPackPlacer placer(config);
    const auto result =
        placer.placeBatch({makeSpec(0, 10)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].placement.totalWorkers(), 10);
}

TEST(NetPackPlacer, InvalidConfigRejected)
{
    NetPackConfig config;
    config.maxFlowsTracked = 0;
    EXPECT_THROW(NetPackPlacer placer(config), ConfigError);
    config.maxFlowsTracked = 200;
    EXPECT_THROW(NetPackPlacer placer2(config), ConfigError);
}

TEST(NetPackPlacer, ValueOrderBreaksTies)
{
    // Higher-value jobs place first and thus grab the single-server
    // slots; verify ordering is respected when capacity is scarce.
    const ClusterTopology topo = makeTopo(1, 3);
    GpuLedger gpus(topo);
    gpus.allocate(ServerId(1), JobId(90), 4);
    gpus.allocate(ServerId(2), JobId(90), 4);
    NetPackPlacer placer;
    const std::vector<JobSpec> batch = {makeSpec(0, 4, "VGG16", 1.0),
                                        makeSpec(1, 4, "VGG16", 9.0)};
    const auto result = placer.placeBatch(batch, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].id.value, 1);
}

// ------------------------------------------------------------ baselines

TEST(Baselines, FactoryKnowsEveryName)
{
    for (const char *name :
         {"NetPack", "NetPack+LS", "Portfolio", "GB", "FB", "LF",
          "Optimus", "Tetris", "Comb", "Random"}) {
        const auto placer = makePlacerByName(name);
        ASSERT_NE(placer, nullptr);
        EXPECT_EQ(placer->name(), name);
    }
    EXPECT_THROW(makePlacerByName("SkyNet"), ConfigError);
}

TEST(Baselines, LineupMatchesFigures)
{
    const auto names = baselineNames();
    EXPECT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "GB");
}

TEST(Baselines, GpuBalancePrefersEmptiestServer)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    // Servers 0..6 partially used; server 7 untouched.
    for (int s = 0; s < 7; ++s)
        gpus.allocate(ServerId(s), JobId(90), 2);
    GpuBalancePlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 4)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].placement.workers.begin()->first.value, 7);
}

TEST(Baselines, LeastFragmentationDrainsPartialServers)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    gpus.allocate(ServerId(2), JobId(90), 3); // 1 GPU left
    LeastFragmentationPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 1)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    EXPECT_EQ(result.placed[0].placement.workers.begin()->first.value, 2);
}

TEST(Baselines, OptimusSpreadsEvenly)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus(topo);
    OptimusPlacer placer;
    const auto result =
        placer.placeBatch({makeSpec(0, 8)}, topo, gpus, {});
    ASSERT_EQ(result.placed.size(), 1u);
    const Placement &p = result.placed[0].placement;
    EXPECT_EQ(p.totalWorkers(), 8);
    // Top-2 prefix covers 8 GPUs; round-robin gives 4+4.
    EXPECT_EQ(p.workers.size(), 2u);
    for (const auto &[server, count] : p.workers)
        EXPECT_EQ(count, 4);
}

TEST(Baselines, FifoDefersWhenFull)
{
    const ClusterTopology topo = makeTopo(1, 1);
    GpuLedger gpus(topo);
    GpuBalancePlacer placer;
    const std::vector<JobSpec> batch = {makeSpec(0, 4), makeSpec(1, 2)};
    const auto result = placer.placeBatch(batch, topo, gpus, {});
    EXPECT_EQ(result.placed.size(), 1u);
    ASSERT_EQ(result.deferred.size(), 1u);
    EXPECT_EQ(result.deferred[0].value, 1);
}

TEST(Baselines, RandomIsDeterministicPerSeed)
{
    const ClusterTopology topo = makeTopo();
    GpuLedger gpus_a(topo), gpus_b(topo);
    RandomPlacer a(42), b(42);
    const auto ra = a.placeBatch({makeSpec(0, 4)}, topo, gpus_a, {});
    const auto rb = b.placeBatch({makeSpec(0, 4)}, topo, gpus_b, {});
    ASSERT_EQ(ra.placed.size(), 1u);
    ASSERT_EQ(rb.placed.size(), 1u);
    EXPECT_EQ(ra.placed[0].placement.workers.begin()->first.value,
              rb.placed[0].placement.workers.begin()->first.value);
}

// ------------------------------------------------------ property sweep

struct PlacerCase
{
    const char *name;
    int seed;
};

class AllPlacersPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(AllPlacersPropertyTest, RandomBatchesStayConsistent)
{
    const auto [name, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 101 + 3);
    const ClusterTopology topo = makeTopo(3, 4);
    GpuLedger gpus(topo);
    const auto placer = makePlacerByName(name);

    std::vector<PlacedJob> running;
    int next_id = 0;
    for (int round = 0; round < 4; ++round) {
        std::vector<JobSpec> batch;
        const int batch_size = static_cast<int>(rng.uniformInt(1, 6));
        for (int j = 0; j < batch_size; ++j) {
            const auto &zoo = ModelZoo::all();
            const auto &model = zoo[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(zoo.size()) -
                                      1))];
            batch.push_back(makeSpec(
                next_id++, static_cast<int>(rng.uniformInt(1, 10)),
                model.name, rng.uniform(0.5, 3.0)));
        }
        const int free_before = gpus.totalFreeGpus();
        const auto result = placer->placeBatch(batch, topo, gpus, running);

        // Every batch job is either placed or deferred, exactly once.
        std::set<int> seen;
        for (const auto &job : result.placed)
            seen.insert(job.id.value);
        for (JobId id : result.deferred)
            seen.insert(id.value);
        EXPECT_EQ(seen.size(), batch.size());

        int placed_gpus = 0;
        for (const auto &job : result.placed) {
            job.placement.validate();
            const auto spec_it = std::find_if(
                batch.begin(), batch.end(),
                [&](const JobSpec &s) { return s.id == job.id; });
            ASSERT_NE(spec_it, batch.end());
            EXPECT_EQ(job.placement.totalWorkers(), spec_it->gpuDemand);
            placed_gpus += spec_it->gpuDemand;
            // INA racks only where the job actually is.
            for (RackId rack : job.placement.inaRacks)
                EXPECT_TRUE(job.placement.allRacks(topo).count(rack));
            running.push_back(job);
        }
        EXPECT_EQ(gpus.totalFreeGpus(), free_before - placed_gpus);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Placers, AllPlacersPropertyTest,
    ::testing::Combine(::testing::Values("NetPack", "GB", "FB", "LF",
                                         "Optimus", "Tetris", "Comb",
                                         "Random"),
                       ::testing::Range(0, 4)));

} // namespace
} // namespace netpack
