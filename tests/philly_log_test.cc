/**
 * @file
 * Tests for the Microsoft Philly log adapter: CSV parsing, row
 * sanitization, and the log-to-trace conversion the paper's Section 6.1
 * describes (duration + GPU count from the log, random model from the
 * pool).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "workload/philly_log.h"

namespace netpack {
namespace {

constexpr const char *kSampleLog =
    "job_id,submit_time,start_time,end_time,gpus\n"
    "app_0001,1000,1010,2010,4\n"
    "app_0002,1005,1020,1500,1\n"
    "app_0003,1010,,,8\n"          // killed before scheduling
    "app_0004,1020,1030,1030,2\n"  // zero runtime
    "app_0005,1030,1040,5040,16\n";

TEST(PhillyLog, ParsesWellFormedRows)
{
    std::stringstream in(kSampleLog);
    const PhillyLogParse parse = parsePhillyCsv(in);
    ASSERT_EQ(parse.records.size(), 3u);
    EXPECT_EQ(parse.skipped, 2u);
    EXPECT_EQ(parse.records[0].jobName, "app_0001");
    EXPECT_DOUBLE_EQ(parse.records[0].submitTime, 1000.0);
    EXPECT_DOUBLE_EQ(parse.records[0].endTime, 2010.0);
    EXPECT_EQ(parse.records[2].gpus, 16);
}

TEST(PhillyLog, SkipsInconsistentRows)
{
    std::stringstream in("job_id,submit_time,start_time,end_time,gpus\n"
                         "bad_start,100,50,200,4\n" // start < submit
                         "bad_gpus,100,110,200,0\n");
    const PhillyLogParse parse = parsePhillyCsv(in);
    EXPECT_TRUE(parse.records.empty());
    EXPECT_EQ(parse.skipped, 2u);
}

TEST(PhillyLog, MalformedSyntaxThrows)
{
    std::stringstream missing_field("a,1,2,3\n");
    EXPECT_THROW(parsePhillyCsv(missing_field), ConfigError);

    std::stringstream extra_field("a,1,2,3,4,5\n");
    EXPECT_THROW(parsePhillyCsv(extra_field), ConfigError);

    std::stringstream not_a_number("a,xyz,2,3,4\n");
    EXPECT_THROW(parsePhillyCsv(not_a_number), ConfigError);

    std::stringstream bad_gpu_cell("a,1,2,3,many\n");
    EXPECT_THROW(parsePhillyCsv(bad_gpu_cell), ConfigError);
}

TEST(PhillyLog, SyntaxErrorsNameTheLine)
{
    // Strict-read half of the tolerant-read contract (the same one
    // journal::JournalReader applies): broken framing is a ConfigError
    // pointing at the offending line, never a silent skip.
    std::stringstream in("job_id,submit_time,start_time,end_time,gpus\n"
                         "good,100,110,200,4\n"
                         "broken,100,110,200\n");
    try {
        parsePhillyCsv(in);
        FAIL() << "wrong field count should throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
            << e.what();
    }

    std::stringstream numeric("good,100,110,200,4\n"
                              "alpha,one,110,200,4\n");
    try {
        parsePhillyCsv(numeric);
        FAIL() << "non-numeric cell should throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << e.what();
    }
}

TEST(PhillyLog, MalformedRowAfterGoodRowsStillThrows)
{
    // Tolerance covers expected row *semantics*, not corrupt framing:
    // earlier good rows do not downgrade a syntax error to a skip.
    std::stringstream in("a,100,110,200,4\n"
                         "b,105,115,205,2\n"
                         "c,110\n");
    EXPECT_THROW(parsePhillyCsv(in), ConfigError);
}

TEST(PhillyLog, SkipAndCountIsExhaustive)
{
    // Every semantic-skip class, counted once each; blank lines and
    // the header are ignored without counting.
    std::stringstream in("job_id,submit_time,start_time,end_time,gpus\n"
                         "\n"
                         "killed,100,,,8\n"       // empty timestamps
                         "zero_len,100,110,110,2\n" // end == start
                         "backwards,100,50,200,4\n" // start < submit
                         "no_gpus,100,110,200,0\n"
                         "neg_gpus,100,110,200,-3\n"
                         "\n"
                         "good,100,110,200.5,4\n");
    const PhillyLogParse parse = parsePhillyCsv(in);
    EXPECT_EQ(parse.skipped, 5u);
    ASSERT_EQ(parse.records.size(), 1u);
    EXPECT_EQ(parse.records[0].jobName, "good");
    EXPECT_DOUBLE_EQ(parse.records[0].endTime, 200.5);
}

TEST(PhillyLog, EmptyInputIsEmptyParse)
{
    std::stringstream in("");
    const PhillyLogParse parse = parsePhillyCsv(in);
    EXPECT_TRUE(parse.records.empty());
    EXPECT_EQ(parse.skipped, 0u);
}

TEST(PhillyLog, ConversionRebasesAndAssignsModels)
{
    std::stringstream in(kSampleLog);
    const PhillyLogParse parse = parsePhillyCsv(in);
    const JobTrace trace = traceFromPhillyLog(parse.records);
    ASSERT_EQ(trace.size(), 3u);
    // Rebase: earliest submit (1000) becomes t = 0.
    EXPECT_DOUBLE_EQ(trace.at(0).submitTime, 0.0);
    EXPECT_DOUBLE_EQ(trace.at(1).submitTime, 5.0);
    for (const auto &job : trace.jobs()) {
        EXPECT_TRUE(ModelZoo::contains(job.modelName));
        EXPECT_GE(job.iterations, 1);
    }
}

TEST(PhillyLog, LongerRunsGetMoreIterations)
{
    // app_0005 ran 4000 s vs app_0002's 480 s; with any model its
    // iteration count must be larger (16 GPUs -> includes transfer term,
    // but the 8x duration gap dominates).
    std::stringstream in(kSampleLog);
    const PhillyLogParse parse = parsePhillyCsv(in);
    PhillyConversionConfig config;
    config.modelSeed = 42;
    const JobTrace trace = traceFromPhillyLog(parse.records, config);
    const auto &short_job = trace.at(1); // app_0002
    const auto &long_job = trace.at(2);  // app_0005
    EXPECT_GT(long_job.iterations, short_job.iterations);
}

TEST(PhillyLog, ModelSeedIsDeterministic)
{
    std::stringstream in1(kSampleLog), in2(kSampleLog);
    const auto parse1 = parsePhillyCsv(in1);
    const auto parse2 = parsePhillyCsv(in2);
    PhillyConversionConfig config;
    config.modelSeed = 7;
    const JobTrace a = traceFromPhillyLog(parse1.records, config);
    const JobTrace b = traceFromPhillyLog(parse2.records, config);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.at(i).modelName, b.at(i).modelName);
}

TEST(PhillyLog, GpuClampApplies)
{
    std::stringstream in(kSampleLog);
    const auto parse = parsePhillyCsv(in);
    PhillyConversionConfig config;
    config.maxGpuDemand = 8;
    const JobTrace trace = traceFromPhillyLog(parse.records, config);
    for (const auto &job : trace.jobs())
        EXPECT_LE(job.gpuDemand, 8);
}

TEST(PhillyLog, NoRebaseKeepsAbsoluteTimes)
{
    std::stringstream in(kSampleLog);
    const auto parse = parsePhillyCsv(in);
    PhillyConversionConfig config;
    config.rebaseToZero = false;
    const JobTrace trace = traceFromPhillyLog(parse.records, config);
    EXPECT_DOUBLE_EQ(trace.at(0).submitTime, 1000.0);
}

} // namespace
} // namespace netpack
