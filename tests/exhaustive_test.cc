/**
 * @file
 * Tests for the exhaustive (MIP-substitute) solver and for NetPack's DP
 * quality against the exact optimum on small instances.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "placement/exhaustive.h"
#include "placement/netpack_placer.h"

namespace netpack {
namespace {

ClusterTopology
tinyTopo(Gbps pat = 400.0)
{
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = pat;
    return ClusterTopology(config);
}

JobSpec
makeSpec(int id, int gpus, const std::string &model = "VGG16")
{
    JobSpec spec;
    spec.id = JobId(id);
    spec.modelName = model;
    spec.gpuDemand = gpus;
    spec.iterations = 10;
    return spec;
}

TEST(Objective, LocalJobsCostNothing)
{
    const ClusterTopology topo = tinyTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 2)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 2;
    placed.placement.psServer = ServerId(0);
    EXPECT_DOUBLE_EQ(placementObjective(topo, jobs, {placed}), 0.0);
}

TEST(Objective, NetworkJobCostsTransferTime)
{
    const ClusterTopology topo = tinyTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 2)};
    PlacedJob placed;
    placed.id = JobId(0);
    placed.placement.workers[ServerId(0)] = 1;
    placed.placement.workers[ServerId(1)] = 1;
    placed.placement.psServer = ServerId(0);
    placed.placement.inaRacks = {RackId(0)};
    // The PS shares server 0 with a worker, so that access link carries
    // two flows (undirected accounting, MIP Eq. 3) and the converged
    // rate is 50 Gbps; VGG16 is 554 MB.
    const double expected = units::transferTime(554.0, 50.0);
    EXPECT_NEAR(placementObjective(topo, jobs, {placed}), expected, 1e-9);
}

TEST(Exhaustive, SingleJobPrefersSingleServer)
{
    const ClusterTopology topo = tinyTopo();
    GpuLedger gpus(topo);
    ExhaustiveSolver solver;
    const auto result = solver.solve({makeSpec(0, 2)}, topo, gpus);
    ASSERT_EQ(result.placements.size(), 1u);
    // A 2-GPU job fits one 2-GPU server: zero communication is optimal.
    EXPECT_DOUBLE_EQ(result.objective, 0.0);
    EXPECT_TRUE(result.placements[0].placement.workers.size() == 1);
    EXPECT_GT(result.plansEvaluated, 1);
}

TEST(Exhaustive, RespectsOccupiedGpus)
{
    const ClusterTopology topo = tinyTopo();
    GpuLedger gpus(topo);
    // Fill servers 0 and 1 entirely; a 2-GPU job must use rack 1.
    gpus.allocate(ServerId(0), JobId(90), 2);
    gpus.allocate(ServerId(1), JobId(90), 2);
    ExhaustiveSolver solver;
    const auto result = solver.solve({makeSpec(0, 2)}, topo, gpus);
    for (const auto &[server, count] : result.placements[0].placement.workers)
        EXPECT_GE(server.value, 2);
}

TEST(Exhaustive, InfeasibleThrows)
{
    const ClusterTopology topo = tinyTopo();
    GpuLedger gpus(topo);
    ExhaustiveSolver solver;
    EXPECT_THROW(solver.solve({makeSpec(0, 100)}, topo, gpus),
                 ConfigError);
}

TEST(Exhaustive, PlanBudgetEnforced)
{
    const ClusterTopology topo = tinyTopo();
    GpuLedger gpus(topo);
    ExhaustiveSolver solver(10); // absurdly small budget
    EXPECT_THROW(solver.solve({makeSpec(0, 3), makeSpec(1, 3)}, topo,
                              gpus),
                 ConfigError);
}

TEST(Exhaustive, TwoJobsAvoidSharingBottleneck)
{
    // Two 3-GPU jobs on four 2-GPU servers with a heavily oversubscribed
    // core (20 Gbps): crossing racks is strictly worse than the in-rack
    // 50 Gbps share, so the optimum keeps each job within one rack.
    ClusterConfig config;
    config.numRacks = 2;
    config.serversPerRack = 2;
    config.gpusPerServer = 2;
    config.serverLinkGbps = 100.0;
    config.torPatGbps = 400.0;
    config.oversubscription = 10.0;
    const ClusterTopology topo(config);
    GpuLedger gpus(topo);
    ExhaustiveSolver solver(5'000'000);
    const auto result = solver.solve(
        {makeSpec(0, 3, "ResNet50"), makeSpec(1, 3, "ResNet50")}, topo,
        gpus);
    ASSERT_EQ(result.placements.size(), 2u);
    for (const auto &placed : result.placements) {
        EXPECT_TRUE(placed.placement.singleRack(topo))
            << "job " << placed.id.value << " crosses racks";
    }
}

TEST(Exhaustive, NetPackDpIsNearOptimal)
{
    // The headline DP-quality check (§5.1): NetPack's heuristic DP must
    // land within a small factor of the exhaustive optimum.
    const ClusterTopology topo = tinyTopo();
    const std::vector<JobSpec> jobs = {makeSpec(0, 3, "VGG16"),
                                       makeSpec(1, 3, "ResNet50")};

    GpuLedger exact_gpus(topo);
    ExhaustiveSolver solver(5'000'000);
    const auto optimal = solver.solve(jobs, topo, exact_gpus);

    GpuLedger dp_gpus(topo);
    NetPackPlacer placer;
    const auto result = placer.placeBatch(jobs, topo, dp_gpus, {});
    ASSERT_EQ(result.placed.size(), 2u);
    const double dp_objective =
        placementObjective(topo, jobs, result.placed);

    EXPECT_GE(dp_objective, optimal.objective - 1e-9);
    EXPECT_LE(dp_objective, optimal.objective * 2.0 + 1e-9)
        << "DP objective " << dp_objective << " vs optimum "
        << optimal.objective;
}

} // namespace
} // namespace netpack
