/**
 * @file
 * Tier-1 tests for the live-telemetry layer (ISSUE 7): log-bucketed
 * quantile histograms (accuracy against exact nearest-rank samples),
 * time-series rings, scope capture / registry merge of both, the
 * OpenMetrics exposition (mangling, collisions, escaping, bucket
 * cumulativity), the HTTP scrape server, and the flight recorder.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace netpack {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Deterministic log-uniform sample in [lo, hi] from an LCG stream. */
double
logUniform(std::uint64_t &state, double lo, double hi)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(state >> 11) / 9007199254740992.0; // [0, 1)
    return lo * std::pow(hi / lo, u);
}

/** Exact nearest-rank quantile (the definition logQuantile estimates). */
double
exactQuantile(std::vector<double> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const auto total = static_cast<std::int64_t>(sorted.size());
    const auto rank = std::max<std::int64_t>(
        1, std::min<std::int64_t>(
               total, static_cast<std::int64_t>(
                          std::ceil(q * static_cast<double>(total)))));
    return sorted[static_cast<std::size_t>(rank - 1)];
}

class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setMetricsEnabled(true);
        obs::Registry::instance().reset();
        savedRackLimit_ = obs::perRackGaugeLimit();
        savedSampleEvery_ = obs::seriesSampleEvery();
    }

    void TearDown() override
    {
        obs::flight::configure("");
        obs::flight::clear();
        obs::flight::setSloBatchUs(0.0);
        obs::setPerRackGaugeLimit(savedRackLimit_);
        obs::setSeriesSampleEvery(savedSampleEvery_);
        obs::Registry::instance().reset();
        obs::setMetricsEnabled(false);
    }

    int savedRackLimit_ = 0;
    int savedSampleEvery_ = 1;
};

// ---------------------------------------------------------------- buckets

TEST_F(TelemetryTest, LogBucketBoundsAreGeometric)
{
    const obs::LogHistogramSpec spec{1.0, 1000.0, 0.1};
    const std::vector<double> bounds = obs::logBucketBounds(spec);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_DOUBLE_EQ(bounds.front(), spec.minValue);
    EXPECT_GE(bounds.back(), spec.maxValue);
    const double growth = (1.0 + spec.relError) * (1.0 + spec.relError);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_NEAR(bounds[i] / bounds[i - 1], growth, 1e-9);
    // The latency ladder stays small enough to snapshot cheaply.
    EXPECT_LT(obs::logBucketBounds(obs::kLatencySpecUs).size(), 256u);
}

TEST_F(TelemetryTest, LogQuantileWithinDocumentedRelativeError)
{
    obs::LogHistogram &h =
        obs::logHistogram("test.lat_us", obs::kLatencySpecUs);
    std::vector<double> samples;
    std::uint64_t state = 42;
    for (int i = 0; i < 5000; ++i) {
        const double x = logUniform(state, 10.0, 1e6);
        samples.push_back(x);
        h.record(x);
    }
    for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
        const double exact = exactQuantile(samples, q);
        const double est = h.quantile(q);
        EXPECT_LE(std::abs(est - exact),
                  obs::kLatencySpecUs.relError * exact * (1.0 + 1e-9))
            << "q=" << q << " exact=" << exact << " est=" << est;
    }
}

TEST_F(TelemetryTest, LogQuantileEdgeCases)
{
    const obs::LogHistogramSpec spec{1.0, 1000.0, 0.05};
    obs::LogHistogram &h = obs::logHistogram("test.edge", spec);
    // Empty: quantile is 0, min/max sentinels say "no observations".
    EXPECT_EQ(h.total(), 0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_GT(h.observedMin(), h.observedMax());

    // Single sample: every quantile is exactly that sample (the estimate
    // clamps to the exact observed min/max).
    h.record(37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 37.5);

    // Out-of-range samples clamp: below min lands in the underflow
    // bucket, above max in overflow, and the exact min/max still win.
    obs::LogHistogram &c = obs::logHistogram("test.clamp", spec);
    c.record(0.001);
    c.record(5e6);
    EXPECT_EQ(c.total(), 2);
    EXPECT_DOUBLE_EQ(c.observedMin(), 0.001);
    EXPECT_DOUBLE_EQ(c.observedMax(), 5e6);
    EXPECT_DOUBLE_EQ(c.quantile(0.0), 0.001);
    EXPECT_DOUBLE_EQ(c.quantile(1.0), 5e6);
}

TEST_F(TelemetryTest, LogHistogramSpecFixedAtFirstRegistration)
{
    obs::LogHistogram &a =
        obs::logHistogram("test.spec", {1.0, 100.0, 0.1});
    obs::LogHistogram &b =
        obs::logHistogram("test.spec", {2.0, 50.0, 0.2});
    EXPECT_EQ(&a, &b);
    EXPECT_DOUBLE_EQ(b.spec().minValue, 1.0);
}

// ----------------------------------------------------------------- series

TEST_F(TelemetryTest, TimeSeriesRingDropsOldest)
{
    obs::TimeSeries &s = obs::series("test.series", 4);
    for (int i = 0; i < 7; ++i)
        s.push(static_cast<double>(i), static_cast<double>(i * 10));
    EXPECT_EQ(s.capacity(), 4u);
    EXPECT_EQ(s.totalPushed(), 7u);
    const std::vector<obs::SeriesPoint> points = s.points();
    ASSERT_EQ(points.size(), 4u);
    // Oldest-to-newest: points 3, 4, 5, 6 survive.
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_DOUBLE_EQ(points[i].t, static_cast<double>(i + 3));
        EXPECT_DOUBLE_EQ(points[i].value, static_cast<double>((i + 3) * 10));
    }
}

TEST_F(TelemetryTest, IsWallClockMetricConvention)
{
    EXPECT_TRUE(obs::isWallClockMetric("placement.batch_us"));
    EXPECT_TRUE(obs::isWallClockMetric("waterfill.solve_us"));
    EXPECT_TRUE(obs::isWallClockMetric("run.placement_seconds"));
    EXPECT_FALSE(obs::isWallClockMetric("sim.queue_depth"));
    EXPECT_FALSE(obs::isWallClockMetric("waterfill.iterations"));
    EXPECT_FALSE(obs::isWallClockMetric("_us_not_suffix.count"));
}

// --------------------------------------------------- scope capture / merge

TEST_F(TelemetryTest, ScopeCapturesLogHistogramsAndSeries)
{
    obs::MetricsSnapshot captured;
    {
        obs::MetricScope scope;
        obs::recordLogHistogram("test.scoped_us", obs::kLatencySpecUs, 50.0);
        obs::recordLogHistogram("test.scoped_us", obs::kLatencySpecUs, 70.0);
        obs::recordSeriesPoint("test.scoped_series", 1.0, 2.0);
        captured = scope.snapshot();
    }
    // Nothing leaked into the registry...
    const auto global = obs::snapshot();
    EXPECT_EQ(global.logHistograms.count("test.scoped_us"), 0u);
    EXPECT_EQ(global.series.count("test.scoped_series"), 0u);
    // ...but the scope saw everything, with exact min/max.
    const auto &hist = captured.logHistograms.at("test.scoped_us");
    EXPECT_EQ(hist.total, 2);
    EXPECT_DOUBLE_EQ(hist.observedMin, 50.0);
    EXPECT_DOUBLE_EQ(hist.observedMax, 70.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 70.0);
    const auto &series = captured.series.at("test.scoped_series");
    ASSERT_EQ(series.points.size(), 1u);
    EXPECT_DOUBLE_EQ(series.points[0].value, 2.0);

    // Registry::merge publishes both into the process registry.
    obs::Registry::instance().merge(captured);
    const auto merged = obs::snapshot();
    EXPECT_EQ(merged.logHistograms.at("test.scoped_us").total, 2);
    EXPECT_DOUBLE_EQ(
        merged.logHistograms.at("test.scoped_us").observedMax, 70.0);
    EXPECT_EQ(merged.series.at("test.scoped_series").totalPushed, 1u);
    EXPECT_EQ(merged.counters.count("obs.merge_skipped"), 0u);
}

TEST_F(TelemetryTest, MergeSkipsMismatchedLogHistogramSpecs)
{
    obs::logHistogram("test.spec_clash", {1.0, 100.0, 0.1}).record(5.0);
    obs::MetricsSnapshot captured;
    {
        obs::MetricScope scope;
        obs::recordLogHistogram("test.spec_clash", {1.0, 1000.0, 0.1}, 9.0);
        captured = scope.snapshot();
    }
    obs::Registry::instance().merge(captured);
    const auto global = obs::snapshot();
    EXPECT_EQ(global.logHistograms.at("test.spec_clash").total, 1);
    EXPECT_EQ(global.counters.at("obs.merge_skipped"), 1);
}

TEST_F(TelemetryTest, NestedScopeFoldsTelemetryIntoParent)
{
    obs::MetricScope outer;
    obs::recordSeriesPoint("test.fold_series", 1.0, 1.0);
    obs::recordLogHistogram("test.fold_us", obs::kLatencySpecUs, 10.0);
    {
        obs::MetricScope inner;
        obs::recordSeriesPoint("test.fold_series", 2.0, 2.0);
        obs::recordLogHistogram("test.fold_us", obs::kLatencySpecUs, 90.0);
    } // folds into outer
    const auto snap = outer.snapshot();
    EXPECT_EQ(snap.series.at("test.fold_series").points.size(), 2u);
    EXPECT_EQ(snap.logHistograms.at("test.fold_us").total, 2);
    EXPECT_DOUBLE_EQ(snap.logHistograms.at("test.fold_us").observedMax,
                     90.0);
}

// ------------------------------------------------------------ OpenMetrics

TEST_F(TelemetryTest, OpenMetricsNameMangling)
{
    EXPECT_EQ(obs::openMetricsName("sim.queue_depth"), "sim_queue_depth");
    EXPECT_EQ(obs::openMetricsName("sim.pat_utilization.rack0"),
              "sim_pat_utilization_rack0");
    EXPECT_EQ(obs::openMetricsName("9lives"), "_9lives");
    EXPECT_EQ(obs::openMetricsName("a-b c"), "a_b_c");
    EXPECT_EQ(obs::openMetricsName(""), "_");
}

TEST_F(TelemetryTest, OpenMetricsEscaping)
{
    EXPECT_EQ(obs::openMetricsEscape("plain"), "plain");
    EXPECT_EQ(obs::openMetricsEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::openMetricsEscape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(obs::openMetricsEscape("say \"hi\""), "say \\\"hi\\\"");
}

TEST_F(TelemetryTest, OpenMetricsRendersCountersGaugesAndEof)
{
    obs::counter("test.batches").add(7);
    obs::gauge("test.load").set(0.5);
    const std::string text = obs::renderOpenMetrics();
    EXPECT_NE(text.find("# TYPE netpack_test_batches counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_batches_total 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE netpack_test_load gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_load 0.5\n"), std::string::npos);
    // Help lines carry the raw dotted name; payload ends with # EOF.
    EXPECT_NE(text.find("netpack metric 'test.batches'"), std::string::npos);
    const std::string tail = "# EOF\n";
    ASSERT_GE(text.size(), tail.size());
    EXPECT_EQ(text.compare(text.size() - tail.size(), tail.size(), tail), 0);
}

TEST_F(TelemetryTest, OpenMetricsCollisionsGetDeterministicSuffixes)
{
    // Both mangle to netpack_col_a_b; render order (sorted raw names:
    // '.' < '_') fixes who wins the base name.
    obs::counter("col.a.b").add(1);
    obs::counter("col.a_b").add(2);
    const std::string text = obs::renderOpenMetrics();
    EXPECT_NE(text.find("netpack_col_a_b_total 1\n"), std::string::npos);
    EXPECT_NE(text.find("netpack_col_a_b_2_total 2\n"), std::string::npos);
}

TEST_F(TelemetryTest, OpenMetricsHistogramBucketsAreCumulative)
{
    obs::Histogram &h =
        obs::histogram("test.cume", std::vector<double>{1.0, 2.0, 4.0});
    h.record(0.5); // le 1
    h.record(1.5); // le 2
    h.record(3.0); // le 4
    h.record(9.0); // overflow -> +Inf only
    const std::string text = obs::renderOpenMetrics();
    EXPECT_NE(text.find("netpack_test_cume_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_cume_bucket{le=\"2\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_cume_bucket{le=\"4\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_cume_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("netpack_test_cume_count 4\n"), std::string::npos);
    EXPECT_NE(text.find("netpack_test_cume_sum 14\n"), std::string::npos);
}

TEST_F(TelemetryTest, OpenMetricsLogHistogramIsSparse)
{
    obs::logHistogram("test.sparse_us", obs::kLatencySpecUs).record(100.0);
    const std::string text = obs::renderOpenMetrics();
    // One populated bucket plus +Inf — not the whole ~213-rung ladder.
    std::size_t buckets = 0, pos = 0;
    const std::string needle = "netpack_test_sparse_us_bucket{";
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        ++buckets;
        pos += needle.size();
    }
    EXPECT_EQ(buckets, 2u);
    EXPECT_NE(text.find("netpack_test_sparse_us_count 1\n"),
              std::string::npos);
}

// ------------------------------------------------------------ HTTP server

/** One blocking HTTP request against 127.0.0.1:@p port. */
std::string
httpGet(std::uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST_F(TelemetryTest, HttpServerServesScrapesOnEphemeralPort)
{
    obs::counter("test.http").add(3);
    obs::MetricsHttpServer server(0);
    ASSERT_NE(server.port(), 0);

    const std::string metrics = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find(obs::kOpenMetricsContentType),
              std::string::npos);
    EXPECT_NE(metrics.find("netpack_test_http_total 3"), std::string::npos);
    EXPECT_NE(metrics.find("# EOF"), std::string::npos);

    EXPECT_NE(httpGet(server.port(), "/healthz").find("HTTP/1.1 200 OK"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/nope").find("HTTP/1.1 404"),
              std::string::npos);

    // Each served /metrics bumped the scrape counter.
    EXPECT_EQ(obs::snapshot().counters.at("obs.scrapes"), 1);
}

// -------------------------------------------------------- flight recorder

TEST_F(TelemetryTest, FlightRecorderDumpsChromeTraceJson)
{
    const std::string path =
        ::testing::TempDir() + "netpack_flight_test.json";
    obs::flight::configure(path);
    ASSERT_TRUE(obs::flight::enabled());
    EXPECT_EQ(obs::flight::dumpPath(), path);

    {
        NETPACK_SPAN(span, "test.flight_span");
    }
    NETPACK_COUNT("test.flight_count", 2);
    EXPECT_GE(obs::flight::bufferedEvents(), 2u);

    const std::size_t written = obs::flight::dump("unit-test");
    EXPECT_GE(written, 2u);
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("test.flight_span"), std::string::npos);
    EXPECT_NE(text.find("test.flight_count"), std::string::npos);
    EXPECT_NE(text.find("flight.dump"), std::string::npos);
    EXPECT_NE(text.find("unit-test"), std::string::npos);

    obs::flight::clear();
    EXPECT_EQ(obs::flight::bufferedEvents(), 0u);
    std::remove(path.c_str());
}

TEST_F(TelemetryTest, FlightRecorderDisarmedIsSilent)
{
    obs::flight::configure("");
    obs::flight::clear();
    {
        NETPACK_SPAN(span, "test.quiet");
    }
    EXPECT_EQ(obs::flight::bufferedEvents(), 0u);
    EXPECT_EQ(obs::flight::dump("nobody"), 0u);
}

TEST_F(TelemetryTest, SloBreachBumpsCounterAndDumps)
{
    const std::string path = ::testing::TempDir() + "netpack_slo_test.json";
    obs::flight::configure(path);
    obs::flight::setSloBatchUs(100.0);

    EXPECT_FALSE(obs::flight::checkSlo("placement.batch", 50.0));
    EXPECT_EQ(obs::snapshot().counters.count("obs.slo_breaches"), 0u);

    EXPECT_TRUE(obs::flight::checkSlo("placement.batch", 500.0));
    EXPECT_EQ(obs::snapshot().counters.at("obs.slo_breaches"), 1);
    std::remove(path.c_str());
}

TEST_F(TelemetryTest, SloDisabledByDefault)
{
    obs::flight::setSloBatchUs(0.0);
    EXPECT_FALSE(obs::flight::checkSlo("placement.batch", 1e12));
}

// ----------------------------------------------------------------- knobs

TEST_F(TelemetryTest, PerRackGaugeLimitRoundTripsAndClamps)
{
    obs::setPerRackGaugeLimit(8);
    EXPECT_EQ(obs::perRackGaugeLimit(), 8);
    obs::setPerRackGaugeLimit(-3);
    EXPECT_EQ(obs::perRackGaugeLimit(), 0);
}

TEST_F(TelemetryTest, SeriesSampleEveryClampsToOne)
{
    obs::setSeriesSampleEvery(5);
    EXPECT_EQ(obs::seriesSampleEvery(), 5);
    obs::setSeriesSampleEvery(0);
    EXPECT_EQ(obs::seriesSampleEvery(), 1);
}

} // namespace
} // namespace netpack
