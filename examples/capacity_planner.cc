/**
 * @file
 * Capacity planner: a what-if tool for cluster operators. Given a
 * representative workload, it sweeps the two network knobs that INA
 * deployments must size — switch memory (as PAT) and core
 * oversubscription — and prints the resulting average JCT grid, plus
 * the equivalent aggregator-slot count for each PAT. The answer to
 * "how much switch memory do we actually need before the core becomes
 * the bottleneck?" is where the JCT stops improving down a column.
 *
 * Usage: capacity_planner [--jobs N] [--seed S]
 */

#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "core/experiment.h"
#include "workload/trace_gen.h"

int
main(int argc, char **argv)
{
    using namespace netpack;

    int jobs = 150;
    std::uint64_t seed = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            jobs = std::stoi(argv[++i]);
        else if (arg == "--seed" && i + 1 < argc)
            seed = std::stoull(argv[++i]);
        else {
            std::cerr << "usage: " << argv[0] << " [--jobs N] [--seed S]\n";
            return 2;
        }
    }

    // A communication-heavy mix — the regime where network sizing
    // decisions actually move JCT.
    TraceGenConfig gen;
    gen.numJobs = jobs;
    gen.seed = seed;
    gen.distribution = DemandDistribution::Poisson;
    gen.demandMean = 8.0;
    gen.maxGpuDemand = 32;
    gen.meanInterarrival = 1.0;
    gen.durationLogMu = 4.5;
    const JobTrace trace = generateTrace(gen);

    const std::vector<Gbps> pats = {0.0, 50.0, 100.0, 200.0, 400.0,
                                    800.0};
    const std::vector<double> oversubs = {1.0, 2.0, 4.0, 8.0};

    std::cout << "Capacity planning grid — avg JCT (s) under NetPack\n"
              << "workload: " << jobs << " Poisson(8) jobs, VGG/ResNet mix"
              << "\ncluster: 8 racks x 8 servers x 4 GPUs, 100 Gbps links"
              << "\n\n";

    std::vector<std::string> headers = {"PAT (Gbps)", "aggregators*"};
    for (double oversub : oversubs)
        headers.push_back(formatDouble(oversub, 0) + ":1");
    Table table(std::move(headers));

    ClusterConfig base;
    base.numRacks = 8;
    base.serversPerRack = 8;
    base.gpusPerServer = 4;
    base.serverLinkGbps = 100.0;

    for (Gbps pat : pats) {
        std::vector<std::string> row = {
            formatDouble(pat, 0),
            // Slot count for 256 B payload aggregators at this RTT.
            formatCount(units::memoryForPat(pat, 256.0, base.rtt))};
        for (double oversub : oversubs) {
            ExperimentConfig config;
            config.cluster = base;
            config.cluster.torPatGbps = pat;
            config.cluster.oversubscription = oversub;
            config.placer = "NetPack";
            const RunMetrics metrics = runExperiment(config, trace);
            row.push_back(formatDouble(metrics.avgJct(), 1));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n* 256-byte aggregator slots needed to sustain the PAT "
                 "at RTT = "
              << formatDouble(base.rtt * 1e6, 0) << " us\n"
              << "Read a column top-down: the PAT where JCT flattens is "
                 "the memory worth provisioning.\n";
    return 0;
}
