/**
 * @file
 * Live scrape-endpoint demo: starts the OpenMetrics HTTP server, then
 * keeps the metrics registry busy by running small placement
 * experiments in a loop so a Prometheus scrape (or plain curl) sees
 * counters, gauges, latency quantile histograms, and telemetry series
 * evolving in real time.
 *
 * Run: ./netpack_metrics_server [--port <p>] [--duration <seconds>]
 *                               [--sample-every <k>]
 * then: curl http://127.0.0.1:<port>/metrics
 *
 * --port 0 (the default) binds an ephemeral port and prints it. The
 * loop re-runs a Philly-like trace on the 4-rack quickstart cluster
 * with a fresh seed each pass until the duration expires.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "core/experiment.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "workload/trace_gen.h"

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--port <p>] [--duration <seconds>] [--sample-every <k>]\n"
                 "  --port <p>          scrape port (default 0 = ephemeral)\n"
                 "  --duration <s>      seconds to keep serving (default 30)\n"
                 "  --sample-every <k>  push series points every k-th epoch\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netpack;

    int port = 0;
    double duration_s = 30.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port" && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (arg == "--duration" && i + 1 < argc) {
            duration_s = std::atof(argv[++i]);
        } else if (arg == "--sample-every" && i + 1 < argc) {
            obs::setSeriesSampleEvery(std::atoi(argv[++i]));
        } else {
            return usage(argv[0]);
        }
    }

    obs::setMetricsEnabled(true);
    const obs::MetricsHttpServer *server = obs::ensureMetricsServer(port);
    if (server == nullptr) {
        std::cerr << "failed to start metrics server\n";
        return 1;
    }
    std::cout << "serving OpenMetrics on http://127.0.0.1:" << server->port()
              << "/metrics for " << duration_s << "s\n"
              << "  curl http://127.0.0.1:" << server->port() << "/metrics\n";

    // Keep the registry live: small experiments back-to-back, a fresh
    // trace seed per pass so the series and quantiles keep moving.
    ExperimentConfig config;
    config.cluster.numRacks = 4;
    config.cluster.serversPerRack = 4;
    config.cluster.gpusPerServer = 4;
    config.cluster.serverLinkGbps = 100.0;
    config.cluster.torPatGbps = 400.0;

    TraceGenConfig trace_config;
    trace_config.numJobs = 60;
    trace_config.meanInterarrival = 10.0;

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(duration_s);
    std::uint64_t seed = 1;
    int passes = 0;
    while (std::chrono::steady_clock::now() < deadline) {
        trace_config.seed = seed++;
        const JobTrace trace = generateTrace(trace_config);
        const RunMetrics metrics = runExperiment(config, trace);
        ++passes;
        std::cout << "pass " << passes << ": " << metrics.records.size()
                  << " jobs, avg JCT " << metrics.avgJct() << "s\n";
        // Breathe between passes so scrapes catch distinct states.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cout << "done after " << passes << " passes\n";
    return 0;
}
