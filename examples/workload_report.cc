/**
 * @file
 * Workload report: characterize a job trace the way trace studies do —
 * demand histogram, model mix, arrival statistics, duration percentiles
 * — and estimate its network pressure (aggregate comm intensity). Works
 * on generated traces or on Microsoft Philly-style log exports via the
 * adapter, so operators can sanity-check a trace before replaying it.
 *
 * Usage:
 *   workload_report [--jobs N] [--seed S] [--dist real|poisson|normal]
 *   workload_report --philly-log FILE.csv
 */

#include <fstream>
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "workload/philly_log.h"
#include "workload/trace_gen.h"
#include "workload/workload_stats.h"

int
main(int argc, char **argv)
{
    using namespace netpack;

    int jobs = 500;
    std::uint64_t seed = 1;
    std::string dist_name = "real";
    std::string philly_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            jobs = std::stoi(argv[++i]);
        else if (arg == "--seed" && i + 1 < argc)
            seed = std::stoull(argv[++i]);
        else if (arg == "--dist" && i + 1 < argc)
            dist_name = toLower(argv[++i]);
        else if (arg == "--philly-log" && i + 1 < argc)
            philly_path = argv[++i];
        else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs N] [--seed S]"
                         " [--dist real|poisson|normal]"
                         " [--philly-log FILE]\n";
            return 2;
        }
    }

    try {
        JobTrace trace;
        if (!philly_path.empty()) {
            std::ifstream in(philly_path);
            if (!in) {
                std::cerr << "cannot open " << philly_path << "\n";
                return 1;
            }
            const PhillyLogParse parse = parsePhillyCsv(in);
            std::cout << "parsed " << parse.records.size()
                      << " usable log rows (" << parse.skipped
                      << " skipped)\n";
            trace = traceFromPhillyLog(parse.records);
        } else {
            TraceGenConfig gen;
            gen.numJobs = jobs;
            gen.seed = seed;
            gen.distribution =
                dist_name == "poisson"  ? DemandDistribution::Poisson
                : dist_name == "normal" ? DemandDistribution::Normal
                                        : DemandDistribution::Philly;
            trace = generateTrace(gen);
        }

        const TraceStats stats = analyzeTrace(trace);
        std::cout << "\n=== trace summary: " << stats.jobs
                  << " jobs ===\n";

        Table demands({"GPUs", "jobs", "share"});
        for (const auto &[gpus, count] : stats.demandHistogram) {
            demands.addRow(
                {std::to_string(gpus), std::to_string(count),
                 formatDouble(100.0 * count /
                                  static_cast<double>(stats.jobs),
                              1) +
                     "%"});
        }
        demands.print(std::cout);

        std::cout << "\nmodel mix:";
        for (const auto &[name, count] : stats.modelMix)
            std::cout << " " << name << "=" << count;
        std::cout << "\ncompute demand: "
                  << formatCount(stats.computeGpuSeconds)
                  << " GPU-seconds\n"
                  << "comm demand (at 50 Gbps): "
                  << formatCount(stats.commGpuSeconds) << " GPU-seconds ("
                  << formatDouble(100.0 * stats.commFraction(), 1)
                  << "% of total)\n"
                  << "multi-server jobs (4 GPUs/server): "
                  << stats.multiServerJobs << "\n";

        if (stats.interarrivals.count() > 0) {
            std::cout << "mean interarrival: "
                      << formatDouble(stats.interarrivals.mean(), 1)
                      << " s\n";
        }
        std::cout << "compute-only duration p50/p90/p99: "
                  << formatDouble(stats.computeDurations.percentile(50.0),
                                  0)
                  << " / "
                  << formatDouble(stats.computeDurations.percentile(90.0),
                                  0)
                  << " / "
                  << formatDouble(stats.computeDurations.percentile(99.0),
                                  0)
                  << " s\n"
                  << "total GPU demand: " << stats.totalGpuDemand
                  << " (max single job: " << stats.maxGpuDemand << ")\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
