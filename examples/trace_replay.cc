/**
 * @file
 * Trace replay: run a job trace through the cluster simulator under any
 * placement policy and report JCT/DE statistics — the workflow behind
 * the paper's Figures 7-9. Traces can be generated (Philly-like,
 * Poisson, or Normal demands), saved to CSV, and replayed from CSV so
 * experiments are exactly repeatable.
 *
 * Usage:
 *   trace_replay [--placer NAME] [--jobs N] [--seed S]
 *                [--dist real|poisson|normal] [--fidelity flow|packet]
 *                [--racks R] [--servers-per-rack M] [--pat GBPS]
 *                [--oversub X] [--save FILE] [--load FILE]
 *
 * Examples:
 *   trace_replay --placer NetPack --jobs 200
 *   trace_replay --placer GB --load mytrace.csv --fidelity packet
 */

#include <fstream>
#include <iostream>

#include "common/check.h"
#include "common/strings.h"
#include "core/experiment.h"
#include "workload/trace_gen.h"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--placer NAME] [--jobs N] [--seed S]\n"
           "       [--dist real|poisson|normal] [--fidelity flow|packet]\n"
           "       [--racks R] [--servers-per-rack M] [--pat GBPS]\n"
           "       [--oversub X] [--save FILE] [--load FILE]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netpack;

    std::string placer = "NetPack";
    std::string dist_name = "real";
    std::string fidelity = "flow";
    std::string save_path, load_path;
    int jobs = 200;
    std::uint64_t seed = 1;
    ClusterConfig cluster;
    cluster.numRacks = 8;
    cluster.serversPerRack = 8;
    cluster.gpusPerServer = 4;
    cluster.torPatGbps = 400.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--placer")
            placer = next();
        else if (arg == "--jobs")
            jobs = std::stoi(next());
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--dist")
            dist_name = toLower(next());
        else if (arg == "--fidelity")
            fidelity = toLower(next());
        else if (arg == "--racks")
            cluster.numRacks = std::stoi(next());
        else if (arg == "--servers-per-rack")
            cluster.serversPerRack = std::stoi(next());
        else if (arg == "--pat")
            cluster.torPatGbps = std::stod(next());
        else if (arg == "--oversub")
            cluster.oversubscription = std::stod(next());
        else if (arg == "--save")
            save_path = next();
        else if (arg == "--load")
            load_path = next();
        else
            usage(argv[0]);
    }

    try {
        JobTrace trace;
        if (!load_path.empty()) {
            std::ifstream in(load_path);
            if (!in)
                throw ConfigError("cannot open trace '" + load_path + "'");
            trace = JobTrace::loadCsv(in);
            std::cout << "loaded " << trace.size() << " jobs from "
                      << load_path << "\n";
        } else {
            TraceGenConfig gen;
            gen.numJobs = jobs;
            gen.seed = seed;
            gen.distribution =
                dist_name == "poisson"  ? DemandDistribution::Poisson
                : dist_name == "normal" ? DemandDistribution::Normal
                                        : DemandDistribution::Philly;
            // Keep packet-model replays tractable: shorter jobs.
            if (fidelity == "packet") {
                gen.durationLogMu = 3.6;
                gen.durationLogSigma = 0.8;
                gen.maxGpuDemand = cluster.gpusPerServer *
                                   cluster.serversPerRack;
            }
            trace = generateTrace(gen);
            std::cout << "generated " << trace.size() << " jobs ("
                      << demandDistributionName(gen.distribution)
                      << " demands, seed " << seed << ")\n";
        }
        if (!save_path.empty()) {
            std::ofstream out(save_path);
            trace.saveCsv(out);
            std::cout << "saved trace to " << save_path << "\n";
        }

        ExperimentConfig config;
        config.cluster = cluster;
        config.placer = placer;
        config.fidelity = fidelity == "packet" ? Fidelity::Packet
                                               : Fidelity::Flow;

        const RunMetrics metrics = runExperiment(config, trace);
        const SampleSet jct = metrics.jctSamples();

        std::cout << "\n=== " << placer << " on " << trace.size()
                  << " jobs (" << fidelity << " model) ===\n"
                  << "avg JCT:       " << formatDouble(metrics.avgJct(), 2)
                  << " s\n"
                  << "p50 / p90 JCT: " << formatDouble(jct.median(), 2)
                  << " / " << formatDouble(jct.percentile(90.0), 2)
                  << " s\n"
                  << "avg DE:        " << formatDouble(metrics.avgDe(), 3)
                  << "\n"
                  << "makespan:      "
                  << formatDouble(metrics.makespan, 1) << " s\n"
                  << "GPU util:      "
                  << formatDouble(metrics.avgGpuUtilization * 100.0, 1)
                  << " %\n"
                  << "fragmentation: "
                  << formatDouble(metrics.avgFragmentation * 100.0, 1)
                  << " % of free GPUs stranded\n"
                  << "placement:     " << metrics.placementRounds
                  << " rounds, "
                  << formatDouble(metrics.placementSeconds * 1000.0, 1)
                  << " ms total\n";
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
