/**
 * @file
 * Placement explainer: loads a cluster into a mid-life state (several
 * running jobs fragmenting GPUs and bandwidth), then places one new job
 * with NetPack and with each baseline, showing side by side where each
 * policy puts the workers/PS, whether it crosses racks, and what
 * throughput the water-filling estimator predicts. A compact window
 * into *why* cross-layer placement differs from GPU-only packing.
 *
 * Usage: placement_explainer [--gpus N]
 */

#include <cmath>
#include <iostream>

#include "common/strings.h"
#include "common/table.h"
#include "placement/baselines.h"
#include "placement/netpack_placer.h"
#include "waterfill/steady_state.h"

int
main(int argc, char **argv)
{
    using namespace netpack;

    int demand = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gpus" && i + 1 < argc)
            demand = std::stoi(argv[++i]);
        else {
            std::cerr << "usage: " << argv[0] << " [--gpus N]\n";
            return 2;
        }
    }

    ClusterConfig cluster;
    cluster.numRacks = 3;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 150.0;
    cluster.oversubscription = 4.0;
    const ClusterTopology topo(cluster);

    // Fragment the cluster with running jobs: a big VGG16 spanning rack
    // 0, a ResNet on rack 1, and scattered single-server jobs.
    std::vector<PlacedJob> running;
    GpuLedger base_gpus(topo);
    const auto add_running = [&](int id,
                                 std::initializer_list<
                                     std::pair<int, int>> workers,
                                 int ps) {
        PlacedJob job;
        job.id = JobId(id);
        for (const auto &[server, count] : workers) {
            job.placement.workers[ServerId(server)] = count;
            base_gpus.allocate(ServerId(server), job.id, count);
        }
        job.placement.psServer = ServerId(ps);
        if (!job.placement.singleServer()) {
            for (RackId rack : job.placement.allRacks(topo))
                job.placement.inaRacks.insert(rack);
        }
        running.push_back(std::move(job));
    };
    add_running(100, {{0, 4}, {1, 4}, {2, 2}}, 3); // spans rack 0
    add_running(101, {{4, 4}, {5, 3}}, 6);         // rack 1
    add_running(102, {{8, 4}}, 8);                 // local, rack 2
    add_running(103, {{9, 2}}, 9);                 // local, rack 2

    std::cout << "cluster: 3 racks x 4 servers x 4 GPUs, PAT 150 Gbps, "
                 "4:1 oversubscription\n"
              << "running jobs fragment racks 0-2; free GPUs per server:";
    for (int s = 0; s < topo.numServers(); ++s)
        std::cout << " " << base_gpus.freeGpus(ServerId(s));
    std::cout << "\n\nplacing a new " << demand << "-GPU VGG16 job:\n\n";

    JobSpec spec;
    spec.id = JobId(0);
    spec.modelName = "VGG16";
    spec.gpuDemand = demand;
    spec.iterations = 1000;

    Table table({"placer", "workers (server x gpus)", "PS", "racks",
                 "INA", "est. Gbps"});
    for (const char *name :
         {"NetPack", "GB", "FB", "LF", "Optimus", "Tetris", "Comb"}) {
        GpuLedger gpus = base_gpus;
        const auto placer = makePlacerByName(name);
        const BatchResult result =
            placer->placeBatch({spec}, topo, gpus, running);
        if (result.placed.empty()) {
            table.addRow({name, "(deferred)", "-", "-", "-", "-"});
            continue;
        }
        const Placement &p = result.placed[0].placement;

        std::string workers;
        for (const auto &[server, count] : p.workers) {
            if (!workers.empty())
                workers += " ";
            workers += "s" + std::to_string(server.value) + "x" +
                       std::to_string(count);
        }
        std::string ina;
        for (RackId rack : p.inaRacks) {
            if (!ina.empty())
                ina += ",";
            ina += "r" + std::to_string(rack.value);
        }
        if (ina.empty())
            ina = "off";

        std::vector<PlacedJob> all = running;
        all.push_back(result.placed[0]);
        WaterFillingEstimator estimator(topo);
        const SteadyState steady = estimator.estimate(all);
        const Gbps rate = steady.jobThroughput(spec.id);

        table.addRow({name, workers,
                      "s" + std::to_string(p.psServer.value),
                      std::to_string(p.allRacks(topo).size()), ina,
                      std::isfinite(rate) ? formatDouble(rate, 1)
                                          : "local"});
    }
    table.print(std::cout);
    std::cout << "\nNote how GPU-only policies scatter the job across "
                 "racks over the 4:1 core,\nwhile NetPack trades a "
                 "little GPU locality for an uncongested path.\n";
    return 0;
}
