/**
 * @file
 * Quickstart: the embeddable NetPack API in ~60 lines. Build a cluster
 * topology, create a JobManager (NetPack placement by default), submit a
 * few training jobs, run one scheduling round, and inspect where the
 * workers/PS landed and what throughput the steady-state estimator
 * predicts for each job.
 *
 * Run: ./quickstart
 */

#include <cmath>
#include <iostream>

#include "core/manager.h"

int
main()
{
    using namespace netpack;

    // A small cluster: 4 racks x 4 servers x 4 GPUs, 100 Gbps links,
    // 400 Gbps of aggregation throughput (PAT) per ToR switch.
    ClusterConfig cluster;
    cluster.numRacks = 4;
    cluster.serversPerRack = 4;
    cluster.gpusPerServer = 4;
    cluster.serverLinkGbps = 100.0;
    cluster.torPatGbps = 400.0;
    const ClusterTopology topo(cluster);

    JobManager manager(topo); // NetPack placement by default

    // Submit three jobs: a small one that fits one server, and two that
    // must span servers and share the network.
    struct Request
    {
        int gpus;
        const char *model;
    };
    const Request requests[] = {{4, "ResNet50"}, {8, "VGG16"},
                                {12, "VGG19"}};
    int next_id = 0;
    for (const Request &request : requests) {
        JobSpec spec;
        spec.id = JobId(next_id++);
        spec.modelName = request.model;
        spec.gpuDemand = request.gpus;
        spec.iterations = 1000;
        manager.submit(spec);
    }

    // One scheduling round (Algorithm 2 under the hood).
    const std::vector<PlacedJob> placed = manager.placeRound();
    std::cout << "placed " << placed.size() << " job(s)\n\n";

    const SteadyState steady = manager.estimateSteadyState();
    for (const PlacedJob &job : placed) {
        std::cout << "job " << job.id.value << ":\n  workers:";
        for (const auto &[server, count] : job.placement.workers)
            std::cout << " server" << server.value << " x" << count;
        std::cout << "\n  PS: server" << job.placement.psServer.value
                  << "\n  INA racks:";
        if (job.placement.inaRacks.empty())
            std::cout << " (none — local or INA disabled)";
        for (RackId rack : job.placement.inaRacks)
            std::cout << " rack" << rack.value;
        const Gbps rate = steady.jobThroughput(job.id);
        std::cout << "\n  estimated throughput: ";
        if (std::isfinite(rate))
            std::cout << rate << " Gbps\n\n";
        else
            std::cout << "local (no network traffic)\n\n";
    }

    std::cout << "free GPUs left: " << manager.gpus().totalFreeGpus()
              << " / " << topo.totalGpus() << "\n";

    // When a job finishes, its GPUs return to the pool.
    manager.finish(placed.front().id);
    std::cout << "after finishing job " << placed.front().id.value << ": "
              << manager.gpus().totalFreeGpus() << " free GPUs\n";
    return 0;
}
