/**
 * @file
 * Journal replay driver: the command-line face of netpack::journal.
 *
 *   netpack_replay --journal FILE                      inspect
 *   netpack_replay --journal FILE --verify             re-run + compare
 *   netpack_replay --journal FILE --resume             continue from the
 *                                                      latest snapshot
 *   netpack_replay --journal FILE --what-if PLACER \
 *                  [--swap-round N]                    counterfactual
 *
 * --verify re-executes the recorded experiment and asserts every
 * placement decision, failure, rebalance, and water-filling summary
 * matches the journal bit-for-bit, reporting the first divergence with
 * its event index and a field diff. --what-if replays the recorded
 * prefix, swaps the placement policy at a chosen round, and prints a
 * recorded-vs-counterfactual JCT/DE delta table — answering "what if
 * this cluster had run the baseline from round N on" without a fresh
 * sweep.
 *
 * Record a journal first, e.g.:
 *   bench_util ... --journal run.jsonl   (any bench harness)
 */

#include <iostream>
#include <string>

#include "common/strings.h"
#include "journal/replayer.h"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --journal FILE [--verify | --resume |"
                 " --what-if PLACER [--swap-round N]]\n";
    std::exit(2);
}

void
printMetricsRow(const std::string &label, const netpack::RunMetrics &m)
{
    using netpack::formatDouble;
    std::cout << "  " << label << "  avg JCT " << formatDouble(m.avgJct(), 2)
              << " s | avg DE " << formatDouble(m.avgDe(), 3)
              << " | makespan " << formatDouble(m.makespan, 1)
              << " s | GPU util "
              << formatDouble(m.avgGpuUtilization * 100.0, 1) << " %\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace netpack;

    std::string journal_path;
    std::string what_if_placer;
    bool verify = false;
    bool resume = false;
    long long swap_round = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--journal")
            journal_path = next();
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--what-if")
            what_if_placer = next();
        else if (arg == "--swap-round")
            swap_round = std::stoll(next());
        else
            usage(argv[0]);
    }
    if (journal_path.empty())
        usage(argv[0]);

    try {
        journal::Replayer replayer(journal_path);
        const journal::JournalHeader &header = replayer.header();
        std::cout << "journal: " << journal_path << "\n"
                  << "  label:   "
                  << (header.label.empty() ? "(none)" : header.label) << "\n"
                  << "  placer:  " << header.config.placer << " (seed "
                  << header.config.seed << ")\n"
                  << "  trace:   " << header.trace.size() << " jobs\n"
                  << "  events:  " << replayer.events().size()
                  << (replayer.complete() ? " (complete run)"
                                          : " (incomplete run)")
                  << "\n";

        if (verify) {
            const journal::VerifyResult result = replayer.verify();
            std::cout << "\nverify: compared " << result.eventsCompared
                      << " events\n";
            if (result.ok) {
                std::cout << "verify: PASS — zero divergences\n";
                return 0;
            }
            std::cout << "verify: FAIL — first divergence:\n  "
                      << result.divergence->describe() << "\n";
            return 1;
        }

        if (resume) {
            if (replayer.hasSnapshot()) {
                const journal::JournalEvent &snap =
                    replayer.events()[replayer.lastSnapshotIndex()];
                std::cout << "\nresume: restoring snapshot at t="
                          << formatDouble(snap.t, 1) << " s\n";
            } else {
                std::cout << "\nresume: no snapshot, running from t=0\n";
            }
            const RunMetrics metrics = replayer.resume();
            printMetricsRow("resumed ", metrics);
            if (replayer.complete()) {
                printMetricsRow("recorded", replayer.recordedMetrics());
            }
            return 0;
        }

        if (!what_if_placer.empty()) {
            const journal::WhatIfResult result =
                replayer.whatIf(what_if_placer, swap_round);
            const RunMetrics &a = result.recorded;
            const RunMetrics &b = result.whatIf;
            std::cout << "\nwhat-if: swap " << header.config.placer
                      << " -> " << result.placer << " at round "
                      << result.swapRound << "\n\n"
                      << "  metric         recorded     what-if       "
                         "delta\n";
            const auto row = [](const std::string &name, double rec,
                                double alt, int digits) {
                const double delta =
                    rec != 0.0 ? (alt - rec) / rec * 100.0 : 0.0;
                std::cout << "  " << name << formatDouble(rec, digits)
                          << "   " << formatDouble(alt, digits) << "   "
                          << (delta >= 0.0 ? "+" : "")
                          << formatDouble(delta, 1) << " %\n";
            };
            row("avg JCT (s)  ", a.avgJct(), b.avgJct(), 2);
            row("avg DE       ", a.avgDe(), b.avgDe(), 3);
            row("makespan (s) ", a.makespan, b.makespan, 1);
            row("GPU util     ", a.avgGpuUtilization, b.avgGpuUtilization,
                3);
            return 0;
        }

        // No mode: the inspection header above is the output.
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
