/**
 * @file
 * The placement-as-a-service CLI: daemon and client in one binary
 * (docs/serving.md).
 *
 * Daemon:
 *   netpack_serve serve [--port <p>] [--racks <n>] [--servers-per-rack <n>]
 *                       [--gpus-per-server <n>] [--placer <name>] [--seed <s>]
 *                       [--jobs <n>] [--wal <path>] [--recover]
 *                       [--snapshot-every <k>]
 *                       [--admission-cap <n>] [--query-threads <n>]
 *                       [--metrics-port <p>] [--state-out <path>]
 *   Prints "listening on port <p>" and serves until SIGINT/SIGTERM or a
 *   client drain; on graceful exit writes the canonical state (schema
 *   netpack.serve_state/1) to --state-out for bit-identity diffing.
 *
 * Client:
 *   netpack_serve drive --port <p> --count <n> [--seed <s>] [--start <k>]
 *     Deterministic mixed place/depart/query/stats workload: request k is
 *     a pure function of (seed, k), so two daemons fed the same (seed,
 *     start, count) ranges see byte-identical request streams — the CI
 *     kill/restart check replays chunk 2 against a recovered daemon.
 *   netpack_serve stats|snapshot|drain --port <p>
 *   netpack_serve query --port <p> --model <name> --gpus <n>
 */

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "obs/http_export.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/placement_server.h"
#include "workload/models.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    g_signal = sig;
}

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " <mode> [options]\n"
        << "  serve     run the placement daemon (see file header)\n"
        << "  drive     deterministic load: --port --count [--seed] [--start]\n"
        << "  stats     print the server's stats line: --port\n"
        << "  snapshot  ask the server to journal a snapshot: --port\n"
        << "  drain     gracefully shut the server down: --port\n"
        << "  query     one what-if: --port --model <name> --gpus <n>\n";
    return 2;
}

/**
 * Request k of the drive workload, as a pure function of (seed, k):
 * 5/8 place, 2/8 depart-a-recent-job, 1/8 query-or-stats. Departs can
 * name jobs that were deferred or already departed — the server answers
 * those with a deterministic error, which is part of the contract (the
 * stream needs no client-side state to be reproducible in chunks).
 */
netpack::serve::Request
driveRequest(std::uint64_t seed, std::uint64_t k)
{
    using netpack::serve::Op;
    using netpack::serve::Request;
    constexpr int kJobBase = 100000;
    constexpr int kQueryBase = 50000000;

    netpack::Rng rng(seed * 1000003ull + k);
    const auto &models = netpack::ModelZoo::all();

    Request request;
    request.id = static_cast<std::int64_t>(k);
    const std::uint64_t slot = k % 8;
    if (slot <= 4) {
        request.op = Op::Place;
        netpack::JobSpec spec;
        spec.id = netpack::JobId(kJobBase + static_cast<int>(k));
        spec.modelName = models[rng() % models.size()].name;
        spec.gpuDemand = 1 + static_cast<int>(rng() % 8);
        spec.iterations = 1000;
        spec.value = 1.0;
        request.jobs.push_back(std::move(spec));
    } else if (slot <= 6) {
        request.op = Op::Depart;
        // A recent-ish request index, nudged onto a place slot.
        std::uint64_t target = k > 24 ? k - 1 - rng() % 24 : 0;
        while (target % 8 > 4 && target > 0)
            --target;
        request.departs.push_back(
            netpack::JobId(kJobBase + static_cast<int>(target)));
    } else if (rng() % 2 == 0) {
        request.op = Op::Query;
        netpack::JobSpec spec;
        spec.id = netpack::JobId(kQueryBase + static_cast<int>(k));
        spec.modelName = models[rng() % models.size()].name;
        spec.gpuDemand = 1 + static_cast<int>(rng() % 8);
        spec.iterations = 1000;
        request.jobs.push_back(std::move(spec));
    } else {
        request.op = Op::Stats;
    }
    return request;
}

int
runServe(int argc, char **argv)
{
    using namespace netpack;
    serve::ServerConfig config;
    config.engine.cluster.numRacks = 16;
    std::string stateOut;
    int metricsPort = -1;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--port" && hasValue)
            config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
        else if (arg == "--racks" && hasValue)
            config.engine.cluster.numRacks = std::atoi(argv[++i]);
        else if (arg == "--servers-per-rack" && hasValue)
            config.engine.cluster.serversPerRack = std::atoi(argv[++i]);
        else if (arg == "--gpus-per-server" && hasValue)
            config.engine.cluster.gpusPerServer = std::atoi(argv[++i]);
        else if (arg == "--placer" && hasValue)
            config.engine.placer = argv[++i];
        else if (arg == "--seed" && hasValue)
            config.engine.seed =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--jobs" && hasValue)
            config.engine.jobs = std::atoi(argv[++i]);
        else if (arg == "--wal" && hasValue)
            config.walPath = argv[++i];
        else if (arg == "--recover")
            config.recover = true;
        else if (arg == "--snapshot-every" && hasValue)
            config.snapshotEvery =
                static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--admission-cap" && hasValue)
            config.admissionCapacity =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        else if (arg == "--query-threads" && hasValue)
            config.queryThreads = std::atoi(argv[++i]);
        else if (arg == "--metrics-port" && hasValue)
            metricsPort = std::atoi(argv[++i]);
        else if (arg == "--state-out" && hasValue)
            stateOut = argv[++i];
        else
            return usage(argv[0]);
    }

    if (metricsPort >= 0)
        obs::ensureMetricsServer(metricsPort);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    serve::PlacementServer server(config);
    std::cout << "listening on port " << server.port() << std::endl;

    while (g_signal == 0 && !server.finished())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();
    server.join();

    const std::uint64_t seq = server.seq();
    if (!stateOut.empty()) {
        std::ofstream os(stateOut, std::ios::trunc);
        NETPACK_REQUIRE(os.good(), "cannot write state: " << stateOut);
        os << server.engine().canonicalState(seq) << '\n';
    }
    std::cout << "drained at seq " << seq << ", "
              << server.requestsServed() << " requests served, digest "
              << server.engine().stateDigest(seq) << std::endl;
    return 0;
}

int
runClient(const std::string &mode, int argc, char **argv)
{
    using namespace netpack;
    int port = 0;
    std::uint64_t count = 0, seed = 1, start = 0;
    std::string model = "VGG16";
    int gpus = 4;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--port" && hasValue)
            port = std::atoi(argv[++i]);
        else if (arg == "--count" && hasValue)
            count = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--seed" && hasValue)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--start" && hasValue)
            start = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--model" && hasValue)
            model = argv[++i];
        else if (arg == "--gpus" && hasValue)
            gpus = std::atoi(argv[++i]);
        else
            return usage(argv[0]);
    }
    NETPACK_REQUIRE(port > 0, "client modes need --port");
    serve::ServeClient client(static_cast<std::uint16_t>(port));

    if (mode == "drive") {
        std::uint64_t ok = 0, errors = 0, rejected = 0, placed = 0,
                      deferred = 0;
        for (std::uint64_t k = start; k < start + count; ++k) {
            const serve::Response response =
                client.call(driveRequest(seed, k));
            if (response.rejected)
                ++rejected;
            else if (response.ok)
                ++ok;
            else
                ++errors;
            placed += response.placed.size();
            deferred += response.deferred.size();
        }
        serve::Request statsReq;
        statsReq.op = serve::Op::Stats;
        statsReq.id = -1;
        const serve::Response stats = client.call(statsReq);
        std::cout << "drive: ok " << ok << ", errors " << errors
                  << ", rejected " << rejected << ", placed " << placed
                  << ", deferred " << deferred << "\n"
                  << "server: seq " << stats.stats.seq << ", running "
                  << stats.stats.runningJobs << ", digest "
                  << stats.stats.digest << std::endl;
        return 0;
    }
    if (mode == "stats" || mode == "snapshot" || mode == "drain") {
        serve::Request request;
        request.op = mode == "stats"      ? serve::Op::Stats
                     : mode == "snapshot" ? serve::Op::Snapshot
                                          : serve::Op::Drain;
        request.id = 1;
        std::cout << client.callRaw(serve::serializeRequest(request))
                  << std::endl;
        return 0;
    }
    if (mode == "query") {
        serve::Request request;
        request.op = serve::Op::Query;
        request.id = 1;
        JobSpec spec;
        spec.id = JobId(99000001);
        spec.modelName = model;
        spec.gpuDemand = gpus;
        request.jobs.push_back(std::move(spec));
        std::cout << client.callRaw(serve::serializeRequest(request))
                  << std::endl;
        return 0;
    }
    return usage(argv[0]);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string mode = argv[1];
    try {
        if (mode == "serve")
            return runServe(argc, argv);
        return runClient(mode, argc, argv);
    } catch (const std::exception &err) {
        std::cerr << "netpack_serve: " << err.what() << "\n";
        return 1;
    }
}
