#!/usr/bin/env python3
"""Validate a netpack run manifest (netpack.run_manifest/4).

Stdlib-only; used by CI and handy locally:

    scripts/check_manifest.py manifest.json \
        --require-counters placement.batches,sim.epochs \
        --min-counters 10 --require-aggregates --aggregate-count 2

    scripts/check_manifest.py manifest.json --require-journal

    # Bit-identity: compare two manifests after stripping the
    # wall-clock-dependent fields (placement_seconds, `_us`/`_seconds`
    # metrics, wallclock-flagged quantiles) plus args/env.
    scripts/check_manifest.py manifest-jobs4.json --diff manifest-jobs1.json

    # Serve daemon canonical state (netpack.serve_state/1): validate
    # one file, or assert two are byte-identical (the kill/restart
    # recovery contract — no wall-clock stripping, equal states must
    # produce equal bytes).
    scripts/check_manifest.py stateA.json --state [--diff stateB.json]

Exits non-zero with a message on the first violated assertion.
"""

import argparse
import json
import sys

SCHEMA = "netpack.run_manifest/4"
STATE_SCHEMA = "netpack.serve_state/1"


def fail(message):
    print(f"check_manifest: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def is_wallclock_name(name):
    """The obs wall-clock naming convention (obs::isWallClockMetric)."""
    return name.endswith("_us") or name.endswith("_seconds")


def strip_wallclock(value, key=None):
    """Drop every machine-speed-dependent field so the remainder is
    covered by the --jobs N bit-identity contract."""
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if k == "placement_seconds":
                continue
            if is_wallclock_name(k):
                continue  # metrics/log_histograms/quantiles entries
            out[k] = strip_wallclock(v, k)
        return out
    if isinstance(value, list):
        return [strip_wallclock(v) for v in value]
    return value


def check_state(path, args):
    """Validate a serve canonical-state file; with --diff, require the
    two files byte-identical (bit-identity is the whole contract)."""
    with open(path, "rb") as f:
        raw = f.read()
    state = json.loads(raw)
    if state.get("schema") != STATE_SCHEMA:
        fail(f"state schema is {state.get('schema')!r}, "
             f"want {STATE_SCHEMA!r}")
    for block in ("seq", "placer", "placed_jobs", "departed_jobs",
                  "deferred_jobs", "context", "gpu_holdings"):
        if block not in state:
            fail(f"state missing field {block!r}")
    if args.diff:
        with open(args.diff, "rb") as f:
            other = f.read()
        if raw != other:
            fail(f"{path} and {args.diff} are not byte-identical "
                 "(kill/restart recovery diverged)")
        print(f"check_manifest: OK: {path} == {args.diff} "
              f"(byte-identical, seq {state['seq']})")
    else:
        print(f"check_manifest: OK: serve state seq {state['seq']}, "
              f"{len(state['gpu_holdings'])} holdings, "
              f"placer {state['placer']}")


def check(manifest, args):
    if manifest.get("schema") != args.schema:
        fail(f"schema is {manifest.get('schema')!r}, want {args.schema!r}")

    for block in ("args", "env", "clusters", "seeds", "runs", "metrics",
                  "journal", "series", "quantiles"):
        if block not in manifest:
            fail(f"missing top-level block {block!r}")

    counters = manifest["metrics"].get("counters", {})
    for name in args.require_counters:
        if name not in counters:
            fail(f"missing counter {name!r}")
    if len(counters) < args.min_counters:
        fail(f"only {len(counters)} counters, want >= {args.min_counters}")

    if args.require_aggregates:
        aggregates = manifest.get("aggregates", [])
        if not aggregates:
            fail("aggregates block is empty")
        for entry in aggregates:
            for metric in ("avg_jct", "avg_de", "makespan",
                           "avg_gpu_utilization"):
                stat = entry.get(metric)
                if stat is None:
                    fail(f"{entry.get('cell')}: missing {metric}")
                for field in ("count", "mean", "stddev", "ci95"):
                    if field not in stat:
                        fail(f"{entry.get('cell')}: {metric} lacks {field}")
            if args.aggregate_count and \
                    entry["avg_jct"]["count"] != args.aggregate_count:
                fail(f"{entry.get('cell')}: expected "
                     f"{args.aggregate_count} runs per cell, got "
                     f"{entry['avg_jct']['count']}")

    if args.require_journal:
        journal = manifest["journal"]
        if journal.get("enabled") is not True:
            fail(f"journal not enabled: {journal}")
        for field in ("events_written", "snapshots_written",
                      "runs_recorded"):
            if not journal.get(field, 0) > 0:
                fail(f"journal.{field} is not positive: {journal}")
        if journal.get("replay_divergences", 0) != 0:
            fail(f"replay divergences: {journal}")

    if args.require_series:
        series = manifest["series"]
        if not series:
            fail("series block is empty")
        for name, data in series.items():
            if not data.get("points"):
                fail(f"series {name!r} has no points")
            if data["total_pushed"] < len(data["points"]):
                fail(f"series {name!r}: total_pushed "
                     f"{data['total_pushed']} < {len(data['points'])} "
                     "retained points")
            # Points are sim-time-keyed but restart per run, so the
            # merged registry series is per-run ordered, not globally.
            for point in data["points"]:
                if len(point) != 2:
                    fail(f"series {name!r} has a malformed point: {point}")

    if args.require_quantiles:
        quantiles = manifest["quantiles"]
        if not quantiles:
            fail("quantiles block is empty")
        for name, entry in quantiles.items():
            for field in ("count", "sum", "min", "max", "p50", "p90",
                          "p95", "p99", "rel_err", "wallclock"):
                if field not in entry:
                    fail(f"quantiles[{name!r}] lacks {field}")
            if not (entry["min"] <= entry["p50"] <= entry["p95"]
                    <= entry["p99"] <= entry["max"]):
                fail(f"quantiles[{name!r}] are not monotone: {entry}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manifest", help="manifest JSON to validate")
    parser.add_argument("--schema", default=SCHEMA,
                        help=f"expected schema id (default {SCHEMA})")
    parser.add_argument("--require-counters", default="",
                        help="comma-separated counter names that must exist")
    parser.add_argument("--min-counters", type=int, default=0,
                        help="minimum number of registered counters")
    parser.add_argument("--require-aggregates", action="store_true",
                        help="aggregates block must be present and well-formed")
    parser.add_argument("--aggregate-count", type=int, default=0,
                        help="expected runs per aggregate cell")
    parser.add_argument("--require-journal", action="store_true",
                        help="journal block must show a recorded run")
    parser.add_argument("--require-series", action="store_true",
                        help="series block must be non-empty and ordered")
    parser.add_argument("--require-quantiles", action="store_true",
                        help="quantiles block must be non-empty and monotone")
    parser.add_argument("--state", action="store_true",
                        help="the file is a serve canonical state "
                             f"({STATE_SCHEMA}); --diff compares bytes")
    parser.add_argument("--diff", metavar="OTHER",
                        help="second manifest that must be bit-identical "
                             "after stripping wall-clock fields and args/env")
    args = parser.parse_args()
    args.require_counters = [c for c in args.require_counters.split(",") if c]

    if args.state:
        check_state(args.manifest, args)
        return

    with open(args.manifest) as f:
        manifest = json.load(f)
    check(manifest, args)

    if args.diff:
        with open(args.diff) as f:
            other = json.load(f)
        for m in (manifest, other):
            m.pop("args", None)
            m.pop("env", None)
        a, b = strip_wallclock(manifest), strip_wallclock(other)
        if a != b:
            keys = [k for k in a if a.get(k) != b.get(k)]
            fail(f"manifests differ after wall-clock strip in: {keys}")
        print(f"check_manifest: OK: {args.manifest} == {args.diff} "
              "(wall-clock fields excluded)")
    else:
        counters = manifest["metrics"].get("counters", {})
        print(f"check_manifest: OK: schema {manifest['schema']}, "
              f"{len(counters)} counters, "
              f"{len(manifest.get('aggregates', []))} aggregate cells, "
              f"{len(manifest['series'])} series, "
              f"{len(manifest['quantiles'])} quantile families")


if __name__ == "__main__":
    main()
