#!/usr/bin/env python3
"""Gate a fresh bench manifest against a committed BENCH_*.json baseline.

Usage:
  check_bench.py placer <baseline.json> <current.json> [--tolerance 0.25]
  check_bench.py serve  <baseline.json> <current.json>

The baselines pin the bench trail: refresh them with
scripts/bench_trail.sh and commit the result; CI re-runs the benches and
calls this script so a perf regression fails the build instead of
rotting silently.

What is compared is chosen for machine portability — CI runners and dev
boxes differ wildly in absolute speed, so:

  placer: the ref-relative *speedup ratios* of the serial optimized lane
    ("speedup p50"/"speedup p95") must stay within --tolerance
    (default 25%) of the baseline per (racks, batch) row — a ratio of
    two timings on the same machine transfers across machines. The
    parallel lane's ratios additionally depend on the runner's core
    count, so they are gated by absolute floors only: >= 3x at the
    64-rack acceptance point and >= 4x at the 256-rack point (the
    intra-epoch parallelism target).

  serve: absolute throughput/latency with loose floors — current req/s
    must reach at least half the baseline (and the bench's own 1000
    req/s floor), p99 at most twice the baseline (and under the bench's
    50 ms ceiling).
"""

import argparse
import json
import sys


def load_table(path):
    with open(path) as fh:
        manifest = json.load(fh)
    tables = manifest.get("tables") or []
    if not tables:
        sys.exit(f"{path}: manifest has no tables")
    table = tables[0]
    headers = table["headers"]
    return [dict(zip(headers, row)) for row in table["rows"]]


def ratio(cell):
    """Parse a '12.34x' speedup cell."""
    return float(str(cell).rstrip("x"))


def check_placer(baseline_rows, current_rows, tolerance):
    failures = []
    current = {(r["racks"], r["batch"]): r for r in current_rows}
    for base in baseline_rows:
        key = (base["racks"], base["batch"])
        row = current.get(key)
        if row is None:
            failures.append(f"row racks={key[0]} batch={key[1]} "
                            "missing from current manifest")
            continue
        for col in ("speedup p50", "speedup p95"):
            want = ratio(base[col]) * (1.0 - tolerance)
            got = ratio(row[col])
            if got < want:
                failures.append(
                    f"racks={key[0]} batch={key[1]} {col}: {got:.2f}x "
                    f"< {want:.2f}x (baseline {ratio(base[col]):.2f}x "
                    f"- {tolerance:.0%})")
        if key[0] == "64" and ratio(row["speedup p50"]) < 3.0:
            failures.append(f"racks=64 batch={key[1]} speedup p50 "
                            f"{ratio(row['speedup p50']):.2f}x < 3.0x floor")
        if key[0] == "256" and ratio(row["speedup par p50"]) < 4.0:
            failures.append(
                f"racks=256 batch={key[1]} speedup par p50 "
                f"{ratio(row['speedup par p50']):.2f}x < 4.0x floor")
    return failures


def check_serve(baseline_rows, current_rows):
    failures = []
    base = {r["load"]: r for r in baseline_rows}
    cur = {r["load"]: r for r in current_rows}
    for load, b in base.items():
        row = cur.get(load)
        if row is None:
            failures.append(f"load={load} missing from current manifest")
            continue
        req_floor = max(1000.0, 0.5 * float(b["req/s"]))
        if float(row["req/s"]) < req_floor:
            failures.append(f"load={load} req/s {row['req/s']} "
                            f"< floor {req_floor:.0f}")
        p99_ceiling = min(50.0, 2.0 * float(b["p99 ms"]))
        if float(row["p99 ms"]) > p99_ceiling:
            failures.append(f"load={load} p99 {row['p99 ms']} ms "
                            f"> ceiling {p99_ceiling:.1f} ms")
    return failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("kind", choices=("placer", "serve"))
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()

    baseline_rows = load_table(args.baseline)
    current_rows = load_table(args.current)
    if args.kind == "placer":
        failures = check_placer(baseline_rows, current_rows,
                                args.tolerance)
    else:
        failures = check_serve(baseline_rows, current_rows)

    if failures:
        print(f"check_bench[{args.kind}]: FAIL")
        for failure in failures:
            print("  " + failure)
        sys.exit(1)
    print(f"check_bench[{args.kind}]: OK "
          f"({len(baseline_rows)} baseline rows held)")


if __name__ == "__main__":
    main()
