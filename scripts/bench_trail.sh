#!/usr/bin/env bash
# The CI-gated bench trail: regenerate (or verify) the committed
# BENCH_placer.json / BENCH_serve.json baselines.
#
# Usage:
#   scripts/bench_trail.sh [--jobs N]            refresh the baselines
#   scripts/bench_trail.sh --check [--jobs N]    run fresh, compare
#                                                against the committed
#                                                baselines, do not touch
#                                                them (CI mode)
#
# Both benches run deterministic pinned-seed workloads, so the only
# baseline drift between runs is timing noise; scripts/check_bench.py
# compares machine-portable speedup ratios (plus loose serve floors),
# which is what makes a committed baseline meaningful across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
JOBS="$(nproc)"
while [ $# -gt 0 ]; do
  case "$1" in
    --check) CHECK=1; shift ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

# Reuse build/ with whatever generator it was configured with; only a
# fresh tree gets the default generator.
cmake -B build -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build --target bench_placer_micro bench_serve > /dev/null

if [ "$CHECK" = 1 ]; then
  out=build/bench_trail
  mkdir -p "$out"
  build/bench/bench_placer_micro --jobs "$JOBS" --json "$out/BENCH_placer.json"
  build/bench/bench_serve --jobs "$JOBS" --json "$out/BENCH_serve.json"
  python3 scripts/check_bench.py placer BENCH_placer.json "$out/BENCH_placer.json"
  python3 scripts/check_bench.py serve BENCH_serve.json "$out/BENCH_serve.json"
else
  build/bench/bench_placer_micro --jobs "$JOBS" --json BENCH_placer.json
  build/bench/bench_serve --jobs "$JOBS" --json BENCH_serve.json
  echo "baselines refreshed: BENCH_placer.json BENCH_serve.json (commit them)"
fi
