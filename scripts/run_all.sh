#!/usr/bin/env bash
# Build, test, and regenerate every figure/table of the reproduction.
#
# Usage: scripts/run_all.sh [--full]
#   --full  paper-scale bench parameters (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG="${1:-}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            echo "################ $(basename "$b")"
            case "$(basename "$b")" in
              bench_micro) "$b" ;; # google-benchmark: own flag parser
              # shellcheck disable=SC2086
              *) "$b" ${FULL_FLAG} ;;
            esac
        fi
    done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
