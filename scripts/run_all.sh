#!/usr/bin/env bash
# Build, test, and regenerate every figure/table of the reproduction.
#
# Usage: scripts/run_all.sh [--full] [--jobs N] [--seeds K] [--csv]
#                           [--journal DIR] [--snapshot-every S] [--resume]
#   --full     paper-scale bench parameters (slower)
#   --jobs N   worker threads per bench (default: nproc; results are
#              bit-identical for any N)
#   --seeds K  seed replicates per sweep cell (mean/stddev/95% CI)
#   --journal DIR
#              archive an event journal per run under DIR/<bench>/,
#              next to the BENCH_*.json manifests (replay them with
#              build/examples/netpack_replay)
#   --snapshot-every S / --resume
#              journal snapshot period (simulated seconds) / pick
#              interrupted sweeps back up from their journals
#   Every other flag is forwarded to the benches verbatim.
set -euo pipefail
cd "$(dirname "$0")/.."

# Forward the whole command line; default --jobs to the machine size
# when the caller did not pick one. --journal is held back and re-issued
# per bench so each bench archives into its own subdirectory.
BENCH_ARGS=()
JOURNAL_DIR=""
while [ $# -gt 0 ]; do
  case "$1" in
    --journal) JOURNAL_DIR="$2"; shift 2 ;;
    *) BENCH_ARGS+=("$1"); shift ;;
  esac
done
case " ${BENCH_ARGS[*]-} " in
  *" --jobs"*) ;;
  *) BENCH_ARGS+=(--jobs "$(nproc)") ;;
esac

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            name="$(basename "$b")"
            echo "################ ${name}"
            case "${name}" in
              bench_micro) "$b" ;; # google-benchmark: own flag parser
              # bench_placer_micro rides the default arm below: its
              # p50/p95 epoch latencies and ref-vs-opt speedups land in
              # BENCH_placer_micro.json alongside the figure manifests.
              # Every figure bench leaves a machine-readable manifest
              # (BENCH_fig07_jct.json, ...) next to bench_output.txt.
              # bench_serve rides this arm too and aborts the trail if
              # the serving floor (>= 1000 req/s, p99 < 50 ms) is missed.
              *)
                JOURNAL_ARGS=()
                if [ -n "${JOURNAL_DIR}" ]; then
                    JOURNAL_ARGS=(--journal "${JOURNAL_DIR}/${name#bench_}")
                fi
                "$b" "${BENCH_ARGS[@]}" "${JOURNAL_ARGS[@]}" \
                    --json "BENCH_${name#bench_}.json" ;;
            esac
        fi
    done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt, and BENCH_*.json"
