#!/usr/bin/env bash
# Build, test, and regenerate every figure/table of the reproduction.
#
# Usage: scripts/run_all.sh [--full]
#   --full  paper-scale bench parameters (slower)
set -euo pipefail
cd "$(dirname "$0")/.."

FULL_FLAG="${1:-}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -f "$b" ] && [ -x "$b" ]; then
            name="$(basename "$b")"
            echo "################ ${name}"
            case "${name}" in
              bench_micro) "$b" ;; # google-benchmark: own flag parser
              # Every figure bench leaves a machine-readable manifest
              # (BENCH_fig07_jct.json, ...) next to bench_output.txt.
              # shellcheck disable=SC2086
              *) "$b" ${FULL_FLAG} --json "BENCH_${name#bench_}.json" ;;
            esac
        fi
    done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt, and BENCH_*.json"
