#!/usr/bin/env bash
# Pin the autovectorization of the placement/water-filling hot loops.
#
# The intra-epoch perf work restructured these loops into branch-free
# contiguous passes specifically so GCC's vectorizer takes them (with
# the value-preserving -fno-trapping-math the top-level CMakeLists
# sets). Vectorization is an optimizer outcome, not a language
# guarantee — an innocent-looking edit (a new branch in the loop, a
# select on a conditional load, an FP min reduction) silently drops it
# and the regression only shows up as a benchmark slowdown much later.
# This check compiles the two hot translation units with
# -fopt-info-vec-optimized and asserts a vectorized-loop report within
# a few lines of every marker below, so the drop is caught at CI time
# with a pointer to the exact loop.
#
# Usage: scripts/check_vectorization.sh [compiler]   (default: c++)
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${1:-c++}"
FLAGS=(-std=c++20 -O3 -fno-trapping-math -fopt-info-vec-optimized -c -I src -o /dev/null)

report=$(mktemp)
trap 'rm -f "$report"' EXIT
for tu in src/waterfill/steady_state.cc src/placement/netpack_placer.cc; do
  "$CXX" "${FLAGS[@]}" "$tu" 2>> "$report"
done

python3 - "$report" <<'EOF'
import re
import sys

report_path = sys.argv[1]

# (file, unique source snippet inside the loop body) per loop that must
# vectorize. The snippet locates the loop in today's source; the
# vectorizer reports the loop-header line, so a hit within a few lines
# of the snippet counts.
MARKERS = [
    # Water-filling: the per-link and per-ToR fair-share division passes.
    ("src/waterfill/steady_state.cc", "state.linkResidual[l] /"),
    ("src/waterfill/steady_state.cc", "state.patResidual[r] /"),
    # Worker DP: both relaxRow passes (decision select, value max).
    ("src/placement/netpack_placer.cc", "dec[g] = src[g] + add > dst[g]"),
    ("src/placement/netpack_placer.cc", "dst[g] = offered > dst[g]"),
    # Equation-1 scoring: passes A-D.
    ("src/placement/netpack_placer.cc", "fm[s] = (f > fs ? f : fs) + 1"),
    ("src/placement/netpack_placer.cc", "pen[s] = c / static_cast<double>(fm[s])"),
    ("src/placement/netpack_placer.cc", "seg[s] = cross > seg[s]"),
    ("src/placement/netpack_placer.cc", "score[s] = plan_value + avail[s]"),
    # Plan-invariant terms: the q0/q1 pass and the umax bound pass.
    ("src/placement/netpack_placer.cc", "q1[s] = (c - avail[s])"),
    ("src/placement/netpack_placer.cc", "avail[s] - q1[s] - c / static_cast"),
]
SLOP = 8  # max distance (lines) between snippet and reported loop header

vectorized = {}  # file -> set of line numbers with a vectorized loop
pattern = re.compile(r"([^\s:]+\.cc):(\d+):\d+: optimized: loop vectorized")
with open(report_path) as fh:
    for line in fh:
        m = pattern.search(line)
        if m:
            path = m.group(1)
            for known in ("src/waterfill/steady_state.cc",
                          "src/placement/netpack_placer.cc"):
                if path.endswith(known.rsplit("/", 1)[1]):
                    vectorized.setdefault(known, set()).add(int(m.group(2)))

failures = []
for path, snippet in MARKERS:
    with open(path) as fh:
        lines = [i + 1 for i, text in enumerate(fh) if snippet in text]
    if not lines:
        failures.append(f"{path}: marker not found in source: {snippet!r}")
        continue
    hits = vectorized.get(path, set())
    if not any(abs(marker - hit) <= SLOP for marker in lines for hit in hits):
        failures.append(
            f"{path}:{lines[0]}: loop did NOT vectorize: {snippet!r}")

if failures:
    print("check_vectorization: FAIL")
    for failure in failures:
        print("  " + failure)
    sys.exit(1)
print(f"check_vectorization: OK ({len(MARKERS)} hot loops vectorized)")
EOF
