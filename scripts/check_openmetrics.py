#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (stdlib-only).

Parses the subset of the OpenMetrics grammar the netpack exporter
emits — `# HELP` / `# TYPE` metadata, counter/gauge/histogram samples,
the `# EOF` terminator — and checks structural invariants:

  * every sample line belongs to a declared metric family and uses the
    suffix its TYPE allows (`_total` for counters; `_bucket`/`_sum`/
    `_count` for histograms),
  * histogram `_bucket` series are cumulative (non-decreasing in `le`
    order), end with `le="+Inf"`, and match `_count`,
  * metric names match the OpenMetrics name grammar,
  * the payload ends with exactly one `# EOF`.

    scripts/check_openmetrics.py scrape.txt \
        --require netpack_placement_batches_total \
        --require netpack_placement_batch_us_bucket

Exits non-zero with a message on the first violation.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>\S+)(?: \S+)?$")  # optional timestamp
TYPES = {"counter", "gauge", "histogram", "summary", "unknown"}
SUFFIXES = {
    "counter": ("_total",),
    "histogram": ("_bucket", "_sum", "_count"),
    "gauge": ("",),
    "unknown": ("",),
}


def fail(message):
    print(f"check_openmetrics: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    try:
        return float(text)
    except ValueError:
        fail(f"{where}: unparsable value {text!r}")


def family_of(name, families):
    """Longest declared family this sample name belongs to."""
    best = None
    for family, ftype in families.items():
        for suffix in SUFFIXES.get(ftype, ("",)):
            if name == family + suffix:
                if best is None or len(family) > len(best):
                    best = family
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("payload", help="scraped exposition text file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SAMPLE_NAME",
                        help="a sample name that must appear (repeatable)")
    args = parser.parse_args()

    with open(args.payload) as f:
        text = f.read()
    if not text.endswith("# EOF\n"):
        fail("payload does not end with '# EOF'")
    lines = text.splitlines()
    if lines.count("# EOF") != 1:
        fail("multiple '# EOF' terminators")

    families = {}   # family -> type
    helped = set()
    samples = {}    # sample name -> [(labels, value)]
    for i, line in enumerate(lines, 1):
        if not line:
            fail(f"line {i}: blank line in exposition")
        if line == "# EOF":
            if i != len(lines):
                fail(f"line {i}: '# EOF' before end of payload")
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                fail(f"line {i}: malformed HELP")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                fail(f"line {i}: malformed TYPE: {line!r}")
            if parts[2] in families:
                fail(f"line {i}: duplicate TYPE for {parts[2]}")
            if not NAME_RE.match(parts[2]):
                fail(f"line {i}: illegal family name {parts[2]!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            fail(f"line {i}: unknown comment {line!r}")
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {i}: unparsable sample {line!r}")
        name = m.group("name")
        if family_of(name, families) is None:
            fail(f"line {i}: sample {name!r} has no declared family")
        samples.setdefault(name, []).append(
            (m.group("labels") or "", parse_value(m.group("value"),
                                                  f"line {i}")))

    for family, ftype in families.items():
        if family not in helped:
            fail(f"family {family!r} has TYPE but no HELP")
        if ftype == "histogram":
            buckets = samples.get(family + "_bucket", [])
            if not buckets:
                fail(f"histogram {family!r} has no _bucket samples")
            previous = -1.0
            previous_le = None
            for labels, value in buckets:
                le = re.search(r'le="([^"]*)"', labels)
                if not le:
                    fail(f"{family}_bucket sample lacks an le label")
                le_value = parse_value(le.group(1), f"{family}_bucket le")
                if previous_le is not None and le_value <= previous_le:
                    fail(f"{family!r} buckets out of le order")
                if value < previous:
                    fail(f"{family!r} buckets are not cumulative")
                previous, previous_le = value, le_value
            if previous_le != float("inf"):
                fail(f"{family!r} buckets do not end with le=\"+Inf\"")
            counts = samples.get(family + "_count")
            if not counts:
                fail(f"histogram {family!r} lacks _count")
            if counts[0][1] != buckets[-1][1]:
                fail(f"{family!r}: _count {counts[0][1]} != "
                     f"+Inf bucket {buckets[-1][1]}")
            if family + "_sum" not in samples:
                fail(f"histogram {family!r} lacks _sum")

    for required in args.require:
        if required not in samples:
            fail(f"required sample {required!r} not found")

    histograms = sum(1 for t in families.values() if t == "histogram")
    print(f"check_openmetrics: OK: {len(families)} families "
          f"({histograms} histograms), "
          f"{sum(len(v) for v in samples.values())} samples")


if __name__ == "__main__":
    main()
