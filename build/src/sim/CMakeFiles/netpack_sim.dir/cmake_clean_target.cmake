file(REMOVE_RECURSE
  "libnetpack_sim.a"
)
