file(REMOVE_RECURSE
  "CMakeFiles/netpack_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/netpack_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/netpack_sim.dir/flow_model.cc.o"
  "CMakeFiles/netpack_sim.dir/flow_model.cc.o.d"
  "CMakeFiles/netpack_sim.dir/metrics.cc.o"
  "CMakeFiles/netpack_sim.dir/metrics.cc.o.d"
  "CMakeFiles/netpack_sim.dir/packet_model.cc.o"
  "CMakeFiles/netpack_sim.dir/packet_model.cc.o.d"
  "libnetpack_sim.a"
  "libnetpack_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
