# Empty dependencies file for netpack_sim.
# This may be replaced when dependencies are built.
