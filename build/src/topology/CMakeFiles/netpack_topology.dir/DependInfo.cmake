
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cluster.cc" "src/topology/CMakeFiles/netpack_topology.dir/cluster.cc.o" "gcc" "src/topology/CMakeFiles/netpack_topology.dir/cluster.cc.o.d"
  "/root/repo/src/topology/gpu_ledger.cc" "src/topology/CMakeFiles/netpack_topology.dir/gpu_ledger.cc.o" "gcc" "src/topology/CMakeFiles/netpack_topology.dir/gpu_ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
