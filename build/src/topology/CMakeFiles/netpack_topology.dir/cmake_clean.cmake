file(REMOVE_RECURSE
  "CMakeFiles/netpack_topology.dir/cluster.cc.o"
  "CMakeFiles/netpack_topology.dir/cluster.cc.o.d"
  "CMakeFiles/netpack_topology.dir/gpu_ledger.cc.o"
  "CMakeFiles/netpack_topology.dir/gpu_ledger.cc.o.d"
  "libnetpack_topology.a"
  "libnetpack_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
