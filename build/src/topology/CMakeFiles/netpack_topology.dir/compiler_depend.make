# Empty compiler generated dependencies file for netpack_topology.
# This may be replaced when dependencies are built.
