file(REMOVE_RECURSE
  "libnetpack_topology.a"
)
