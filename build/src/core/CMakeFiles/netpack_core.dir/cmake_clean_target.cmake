file(REMOVE_RECURSE
  "libnetpack_core.a"
)
