file(REMOVE_RECURSE
  "CMakeFiles/netpack_core.dir/experiment.cc.o"
  "CMakeFiles/netpack_core.dir/experiment.cc.o.d"
  "CMakeFiles/netpack_core.dir/ina_rebalancer.cc.o"
  "CMakeFiles/netpack_core.dir/ina_rebalancer.cc.o.d"
  "CMakeFiles/netpack_core.dir/manager.cc.o"
  "CMakeFiles/netpack_core.dir/manager.cc.o.d"
  "libnetpack_core.a"
  "libnetpack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
