# Empty dependencies file for netpack_core.
# This may be replaced when dependencies are built.
