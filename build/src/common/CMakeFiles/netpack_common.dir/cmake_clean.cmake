file(REMOVE_RECURSE
  "CMakeFiles/netpack_common.dir/log.cc.o"
  "CMakeFiles/netpack_common.dir/log.cc.o.d"
  "CMakeFiles/netpack_common.dir/rng.cc.o"
  "CMakeFiles/netpack_common.dir/rng.cc.o.d"
  "CMakeFiles/netpack_common.dir/stats.cc.o"
  "CMakeFiles/netpack_common.dir/stats.cc.o.d"
  "CMakeFiles/netpack_common.dir/strings.cc.o"
  "CMakeFiles/netpack_common.dir/strings.cc.o.d"
  "CMakeFiles/netpack_common.dir/table.cc.o"
  "CMakeFiles/netpack_common.dir/table.cc.o.d"
  "libnetpack_common.a"
  "libnetpack_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
