# Empty compiler generated dependencies file for netpack_common.
# This may be replaced when dependencies are built.
