file(REMOVE_RECURSE
  "libnetpack_common.a"
)
