file(REMOVE_RECURSE
  "CMakeFiles/netpack_placement.dir/baselines.cc.o"
  "CMakeFiles/netpack_placement.dir/baselines.cc.o.d"
  "CMakeFiles/netpack_placement.dir/exhaustive.cc.o"
  "CMakeFiles/netpack_placement.dir/exhaustive.cc.o.d"
  "CMakeFiles/netpack_placement.dir/ina_policy.cc.o"
  "CMakeFiles/netpack_placement.dir/ina_policy.cc.o.d"
  "CMakeFiles/netpack_placement.dir/knapsack.cc.o"
  "CMakeFiles/netpack_placement.dir/knapsack.cc.o.d"
  "CMakeFiles/netpack_placement.dir/mip_model.cc.o"
  "CMakeFiles/netpack_placement.dir/mip_model.cc.o.d"
  "CMakeFiles/netpack_placement.dir/netpack_placer.cc.o"
  "CMakeFiles/netpack_placement.dir/netpack_placer.cc.o.d"
  "CMakeFiles/netpack_placement.dir/placer.cc.o"
  "CMakeFiles/netpack_placement.dir/placer.cc.o.d"
  "libnetpack_placement.a"
  "libnetpack_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
