file(REMOVE_RECURSE
  "libnetpack_placement.a"
)
