
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/baselines.cc" "src/placement/CMakeFiles/netpack_placement.dir/baselines.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/baselines.cc.o.d"
  "/root/repo/src/placement/exhaustive.cc" "src/placement/CMakeFiles/netpack_placement.dir/exhaustive.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/exhaustive.cc.o.d"
  "/root/repo/src/placement/ina_policy.cc" "src/placement/CMakeFiles/netpack_placement.dir/ina_policy.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/ina_policy.cc.o.d"
  "/root/repo/src/placement/knapsack.cc" "src/placement/CMakeFiles/netpack_placement.dir/knapsack.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/knapsack.cc.o.d"
  "/root/repo/src/placement/mip_model.cc" "src/placement/CMakeFiles/netpack_placement.dir/mip_model.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/mip_model.cc.o.d"
  "/root/repo/src/placement/netpack_placer.cc" "src/placement/CMakeFiles/netpack_placement.dir/netpack_placer.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/netpack_placer.cc.o.d"
  "/root/repo/src/placement/placer.cc" "src/placement/CMakeFiles/netpack_placement.dir/placer.cc.o" "gcc" "src/placement/CMakeFiles/netpack_placement.dir/placer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netpack_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/netpack_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ina/CMakeFiles/netpack_ina.dir/DependInfo.cmake"
  "/root/repo/build/src/waterfill/CMakeFiles/netpack_waterfill.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
