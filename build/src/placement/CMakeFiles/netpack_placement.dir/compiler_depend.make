# Empty compiler generated dependencies file for netpack_placement.
# This may be replaced when dependencies are built.
