file(REMOVE_RECURSE
  "libnetpack_ina.a"
)
