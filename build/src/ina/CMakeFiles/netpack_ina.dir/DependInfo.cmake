
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ina/aggregation.cc" "src/ina/CMakeFiles/netpack_ina.dir/aggregation.cc.o" "gcc" "src/ina/CMakeFiles/netpack_ina.dir/aggregation.cc.o.d"
  "/root/repo/src/ina/collectives.cc" "src/ina/CMakeFiles/netpack_ina.dir/collectives.cc.o" "gcc" "src/ina/CMakeFiles/netpack_ina.dir/collectives.cc.o.d"
  "/root/repo/src/ina/hierarchy.cc" "src/ina/CMakeFiles/netpack_ina.dir/hierarchy.cc.o" "gcc" "src/ina/CMakeFiles/netpack_ina.dir/hierarchy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netpack_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/netpack_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
