# Empty compiler generated dependencies file for netpack_ina.
# This may be replaced when dependencies are built.
