file(REMOVE_RECURSE
  "CMakeFiles/netpack_ina.dir/aggregation.cc.o"
  "CMakeFiles/netpack_ina.dir/aggregation.cc.o.d"
  "CMakeFiles/netpack_ina.dir/collectives.cc.o"
  "CMakeFiles/netpack_ina.dir/collectives.cc.o.d"
  "CMakeFiles/netpack_ina.dir/hierarchy.cc.o"
  "CMakeFiles/netpack_ina.dir/hierarchy.cc.o.d"
  "libnetpack_ina.a"
  "libnetpack_ina.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_ina.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
