file(REMOVE_RECURSE
  "libnetpack_waterfill.a"
)
