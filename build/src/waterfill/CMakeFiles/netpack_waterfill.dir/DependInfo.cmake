
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waterfill/steady_state.cc" "src/waterfill/CMakeFiles/netpack_waterfill.dir/steady_state.cc.o" "gcc" "src/waterfill/CMakeFiles/netpack_waterfill.dir/steady_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netpack_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/netpack_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ina/CMakeFiles/netpack_ina.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
