# Empty compiler generated dependencies file for netpack_waterfill.
# This may be replaced when dependencies are built.
