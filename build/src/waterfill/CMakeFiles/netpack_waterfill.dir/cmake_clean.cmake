file(REMOVE_RECURSE
  "CMakeFiles/netpack_waterfill.dir/steady_state.cc.o"
  "CMakeFiles/netpack_waterfill.dir/steady_state.cc.o.d"
  "libnetpack_waterfill.a"
  "libnetpack_waterfill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_waterfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
