file(REMOVE_RECURSE
  "libnetpack_workload.a"
)
