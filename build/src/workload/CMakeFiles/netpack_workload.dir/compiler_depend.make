# Empty compiler generated dependencies file for netpack_workload.
# This may be replaced when dependencies are built.
