
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/job.cc" "src/workload/CMakeFiles/netpack_workload.dir/job.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/job.cc.o.d"
  "/root/repo/src/workload/models.cc" "src/workload/CMakeFiles/netpack_workload.dir/models.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/models.cc.o.d"
  "/root/repo/src/workload/philly_log.cc" "src/workload/CMakeFiles/netpack_workload.dir/philly_log.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/philly_log.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/netpack_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/trace.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/netpack_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/trace_gen.cc.o.d"
  "/root/repo/src/workload/workload_stats.cc" "src/workload/CMakeFiles/netpack_workload.dir/workload_stats.cc.o" "gcc" "src/workload/CMakeFiles/netpack_workload.dir/workload_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netpack_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
