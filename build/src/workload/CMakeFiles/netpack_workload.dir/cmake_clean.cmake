file(REMOVE_RECURSE
  "CMakeFiles/netpack_workload.dir/job.cc.o"
  "CMakeFiles/netpack_workload.dir/job.cc.o.d"
  "CMakeFiles/netpack_workload.dir/models.cc.o"
  "CMakeFiles/netpack_workload.dir/models.cc.o.d"
  "CMakeFiles/netpack_workload.dir/philly_log.cc.o"
  "CMakeFiles/netpack_workload.dir/philly_log.cc.o.d"
  "CMakeFiles/netpack_workload.dir/trace.cc.o"
  "CMakeFiles/netpack_workload.dir/trace.cc.o.d"
  "CMakeFiles/netpack_workload.dir/trace_gen.cc.o"
  "CMakeFiles/netpack_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/netpack_workload.dir/workload_stats.cc.o"
  "CMakeFiles/netpack_workload.dir/workload_stats.cc.o.d"
  "libnetpack_workload.a"
  "libnetpack_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
