# Empty dependencies file for ina_test.
# This may be replaced when dependencies are built.
