file(REMOVE_RECURSE
  "CMakeFiles/ina_test.dir/ina_test.cc.o"
  "CMakeFiles/ina_test.dir/ina_test.cc.o.d"
  "ina_test"
  "ina_test.pdb"
  "ina_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ina_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
