file(REMOVE_RECURSE
  "CMakeFiles/ina_policy_test.dir/ina_policy_test.cc.o"
  "CMakeFiles/ina_policy_test.dir/ina_policy_test.cc.o.d"
  "ina_policy_test"
  "ina_policy_test.pdb"
  "ina_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ina_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
