# Empty compiler generated dependencies file for ina_policy_test.
# This may be replaced when dependencies are built.
