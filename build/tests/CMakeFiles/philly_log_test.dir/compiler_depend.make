# Empty compiler generated dependencies file for philly_log_test.
# This may be replaced when dependencies are built.
