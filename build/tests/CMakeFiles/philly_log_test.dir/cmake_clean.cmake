file(REMOVE_RECURSE
  "CMakeFiles/philly_log_test.dir/philly_log_test.cc.o"
  "CMakeFiles/philly_log_test.dir/philly_log_test.cc.o.d"
  "philly_log_test"
  "philly_log_test.pdb"
  "philly_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/philly_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
