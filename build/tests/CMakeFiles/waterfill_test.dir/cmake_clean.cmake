file(REMOVE_RECURSE
  "CMakeFiles/waterfill_test.dir/waterfill_test.cc.o"
  "CMakeFiles/waterfill_test.dir/waterfill_test.cc.o.d"
  "waterfill_test"
  "waterfill_test.pdb"
  "waterfill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waterfill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
