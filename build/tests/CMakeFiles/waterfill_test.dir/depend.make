# Empty dependencies file for waterfill_test.
# This may be replaced when dependencies are built.
