file(REMOVE_RECURSE
  "CMakeFiles/twotier_test.dir/twotier_test.cc.o"
  "CMakeFiles/twotier_test.dir/twotier_test.cc.o.d"
  "twotier_test"
  "twotier_test.pdb"
  "twotier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twotier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
