# Empty compiler generated dependencies file for twotier_test.
# This may be replaced when dependencies are built.
