# Empty compiler generated dependencies file for multips_test.
# This may be replaced when dependencies are built.
