file(REMOVE_RECURSE
  "CMakeFiles/multips_test.dir/multips_test.cc.o"
  "CMakeFiles/multips_test.dir/multips_test.cc.o.d"
  "multips_test"
  "multips_test.pdb"
  "multips_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
