# Empty compiler generated dependencies file for mip_model_test.
# This may be replaced when dependencies are built.
