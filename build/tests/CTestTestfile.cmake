# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/ina_test[1]_include.cmake")
include("/root/repo/build/tests/waterfill_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/sim_flow_test[1]_include.cmake")
include("/root/repo/build/tests/sim_packet_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/philly_log_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/ina_policy_test[1]_include.cmake")
include("/root/repo/build/tests/twotier_test[1]_include.cmake")
include("/root/repo/build/tests/workload_stats_test[1]_include.cmake")
include("/root/repo/build/tests/mip_model_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/multips_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
