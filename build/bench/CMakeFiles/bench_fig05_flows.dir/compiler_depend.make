# Empty compiler generated dependencies file for bench_fig05_flows.
# This may be replaced when dependencies are built.
