# Empty compiler generated dependencies file for bench_ext_multips.
# This may be replaced when dependencies are built.
