file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multips.dir/bench_ext_multips.cc.o"
  "CMakeFiles/bench_ext_multips.dir/bench_ext_multips.cc.o.d"
  "bench_ext_multips"
  "bench_ext_multips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
