# Empty dependencies file for bench_mip_vs_dp.
# This may be replaced when dependencies are built.
