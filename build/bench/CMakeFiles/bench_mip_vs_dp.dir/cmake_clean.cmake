file(REMOVE_RECURSE
  "CMakeFiles/bench_mip_vs_dp.dir/bench_mip_vs_dp.cc.o"
  "CMakeFiles/bench_mip_vs_dp.dir/bench_mip_vs_dp.cc.o.d"
  "bench_mip_vs_dp"
  "bench_mip_vs_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mip_vs_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
