file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_twotier.dir/bench_ext_twotier.cc.o"
  "CMakeFiles/bench_ext_twotier.dir/bench_ext_twotier.cc.o.d"
  "bench_ext_twotier"
  "bench_ext_twotier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_twotier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
