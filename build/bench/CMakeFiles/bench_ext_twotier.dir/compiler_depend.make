# Empty compiler generated dependencies file for bench_ext_twotier.
# This may be replaced when dependencies are built.
