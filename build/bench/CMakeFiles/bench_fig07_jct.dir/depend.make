# Empty dependencies file for bench_fig07_jct.
# This may be replaced when dependencies are built.
