file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_jct.dir/bench_fig07_jct.cc.o"
  "CMakeFiles/bench_fig07_jct.dir/bench_fig07_jct.cc.o.d"
  "bench_fig07_jct"
  "bench_fig07_jct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
