file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_failures.dir/bench_ext_failures.cc.o"
  "CMakeFiles/bench_ext_failures.dir/bench_ext_failures.cc.o.d"
  "bench_ext_failures"
  "bench_ext_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
