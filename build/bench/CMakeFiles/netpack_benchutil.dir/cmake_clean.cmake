file(REMOVE_RECURSE
  "CMakeFiles/netpack_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/netpack_benchutil.dir/bench_util.cc.o.d"
  "libnetpack_benchutil.a"
  "libnetpack_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netpack_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
