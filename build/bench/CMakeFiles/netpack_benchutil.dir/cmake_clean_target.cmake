file(REMOVE_RECURSE
  "libnetpack_benchutil.a"
)
