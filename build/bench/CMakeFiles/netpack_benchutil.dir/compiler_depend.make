# Empty compiler generated dependencies file for netpack_benchutil.
# This may be replaced when dependencies are built.
