file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_comb.dir/bench_fig13_comb.cc.o"
  "CMakeFiles/bench_fig13_comb.dir/bench_fig13_comb.cc.o.d"
  "bench_fig13_comb"
  "bench_fig13_comb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_comb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
