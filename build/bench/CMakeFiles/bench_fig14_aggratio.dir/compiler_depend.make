# Empty compiler generated dependencies file for bench_fig14_aggratio.
# This may be replaced when dependencies are built.
