file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_aggratio.dir/bench_fig14_aggratio.cc.o"
  "CMakeFiles/bench_fig14_aggratio.dir/bench_fig14_aggratio.cc.o.d"
  "bench_fig14_aggratio"
  "bench_fig14_aggratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_aggratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
