# Empty dependencies file for bench_ext_rebalance.
# This may be replaced when dependencies are built.
