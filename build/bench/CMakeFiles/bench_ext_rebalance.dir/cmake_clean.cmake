file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rebalance.dir/bench_ext_rebalance.cc.o"
  "CMakeFiles/bench_ext_rebalance.dir/bench_ext_rebalance.cc.o.d"
  "bench_ext_rebalance"
  "bench_ext_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
