file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_twodim.dir/bench_ablation_twodim.cc.o"
  "CMakeFiles/bench_ablation_twodim.dir/bench_ablation_twodim.cc.o.d"
  "bench_ablation_twodim"
  "bench_ablation_twodim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_twodim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
