# Empty dependencies file for bench_ablation_twodim.
# This may be replaced when dependencies are built.
