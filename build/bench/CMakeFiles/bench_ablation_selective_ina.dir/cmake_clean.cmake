file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selective_ina.dir/bench_ablation_selective_ina.cc.o"
  "CMakeFiles/bench_ablation_selective_ina.dir/bench_ablation_selective_ina.cc.o.d"
  "bench_ablation_selective_ina"
  "bench_ablation_selective_ina.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selective_ina.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
