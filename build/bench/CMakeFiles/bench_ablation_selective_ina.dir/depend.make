# Empty dependencies file for bench_ablation_selective_ina.
# This may be replaced when dependencies are built.
