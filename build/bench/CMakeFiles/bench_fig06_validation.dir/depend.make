# Empty dependencies file for bench_fig06_validation.
# This may be replaced when dependencies are built.
