# Empty compiler generated dependencies file for bench_fig02_modes.
# This may be replaced when dependencies are built.
