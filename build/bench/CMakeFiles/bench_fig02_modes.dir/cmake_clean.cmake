file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_modes.dir/bench_fig02_modes.cc.o"
  "CMakeFiles/bench_fig02_modes.dir/bench_fig02_modes.cc.o.d"
  "bench_fig02_modes"
  "bench_fig02_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
