file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_algtime.dir/bench_fig10_algtime.cc.o"
  "CMakeFiles/bench_fig10_algtime.dir/bench_fig10_algtime.cc.o.d"
  "bench_fig10_algtime"
  "bench_fig10_algtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_algtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
