
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_algtime.cc" "bench/CMakeFiles/bench_fig10_algtime.dir/bench_fig10_algtime.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_algtime.dir/bench_fig10_algtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/netpack_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/netpack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/netpack_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/netpack_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/waterfill/CMakeFiles/netpack_waterfill.dir/DependInfo.cmake"
  "/root/repo/build/src/ina/CMakeFiles/netpack_ina.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/netpack_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/netpack_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/netpack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
