# Empty dependencies file for bench_fig12_oversub.
# This may be replaced when dependencies are built.
