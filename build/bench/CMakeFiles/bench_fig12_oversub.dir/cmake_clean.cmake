file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_oversub.dir/bench_fig12_oversub.cc.o"
  "CMakeFiles/bench_fig12_oversub.dir/bench_fig12_oversub.cc.o.d"
  "bench_fig12_oversub"
  "bench_fig12_oversub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_oversub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
