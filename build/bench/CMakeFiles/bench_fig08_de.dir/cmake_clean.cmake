file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_de.dir/bench_fig08_de.cc.o"
  "CMakeFiles/bench_fig08_de.dir/bench_fig08_de.cc.o.d"
  "bench_fig08_de"
  "bench_fig08_de.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_de.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
