# Empty compiler generated dependencies file for bench_fig08_de.
# This may be replaced when dependencies are built.
