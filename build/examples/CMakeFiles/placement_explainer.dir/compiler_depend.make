# Empty compiler generated dependencies file for placement_explainer.
# This may be replaced when dependencies are built.
