file(REMOVE_RECURSE
  "CMakeFiles/placement_explainer.dir/placement_explainer.cc.o"
  "CMakeFiles/placement_explainer.dir/placement_explainer.cc.o.d"
  "placement_explainer"
  "placement_explainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_explainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
